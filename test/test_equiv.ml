(** Outcome equivalence of the slot-resolved interpreter ([Interp]) against
    the string-keyed reference ([Interp_ref], the pre-compilation
    semantics).  The two must produce identical [outcome] records — status,
    steps, reads, outputs, counters, syscalls, crashes and the un-interned
    final heap — on every workload under both a seeded-random and a
    round-robin scheduler, and on random programs from the workload
    generator.

    Also pins the log-format compatibility story: a log serialized in the
    legacy v2 (name-spelled) format must parse, solve with the 0-backtrack
    witness seeding intact, and replay faithfully; the current v3
    (intern-table) format must round-trip. *)

open Runtime

(* field-by-field comparison so a mismatch names the observable *)
let check_outcome name (a : Interp.outcome) (b : Interp.outcome) =
  let chk field eq = Alcotest.(check bool) (name ^ ": " ^ field) true eq in
  chk "status" (a.status = b.status);
  chk "steps" (a.steps = b.steps);
  chk "crashes" (a.crashes = b.crashes);
  chk "reads" (a.reads = b.reads);
  chk "outputs" (a.outputs = b.outputs);
  chk "counters" (a.counters = b.counters);
  chk "syscalls" (a.syscalls = b.syscalls);
  chk "final_heap" (a.final_heap = b.final_heap)

let scheds = [ ("random", fun () -> Sched.random ~seed:11); ("rr", Sched.round_robin) ]

let test_workloads_equiv () =
  List.iter
    (fun (bm : Workloads.benchmark) ->
      let p = Workloads.program bm in
      let cp = Interp.compile p in
      List.iter
        (fun (sname, sched) ->
          let a = Interp.run_compiled ~seed:5 ~sched:(sched ()) cp in
          let b = Interp_ref.run ~seed:5 ~sched:(sched ()) p in
          check_outcome (bm.name ^ "/" ^ sname) a b)
        scheds)
    Workloads.all

(* Random sharing signatures through the workload generator: small
   instances, but unconstrained combinations (empty bursts, 1-thread,
   maps+syscalls, tiny arrays) that the named 24 never exercise. *)
let params_gen : Workloads.params QCheck.Gen.t =
  QCheck.Gen.(
    int_range 1 4 >>= fun threads ->
    int_range 1 4 >>= fun iters ->
    int_range 0 3 >>= fun local_work ->
    int_range 1 12 >>= fun array_size ->
    int_range 1 4 >>= fun runlen ->
    bool >>= fun partition ->
    int_range 0 4 >>= fun array_reads ->
    int_range 0 4 >>= fun array_writes ->
    int_range 0 3 >>= fun hot_ops ->
    int_range 0 3 >>= fun locked_ops ->
    bool >>= fun use_maps ->
    bool >>= fun use_syscalls ->
    int_range 1 6 >>= fun stickiness ->
    return
      {
        Workloads.shape = Workloads.Loops;
        threads;
        iters;
        local_work;
        array_size;
        runlen;
        partition;
        array_reads;
        array_writes;
        hot_ops;
        locked_ops;
        use_maps;
        use_syscalls;
        stickiness;
      })

let equiv_prop =
  QCheck.Test.make ~count:40 ~name:"random programs: Interp = Interp_ref"
    (QCheck.make params_gen) (fun prm ->
      let p =
        Lang.Check.validate_exn (Lang.Parser.parse_program (Workloads.generate prm))
      in
      List.for_all
        (fun (_, sched) ->
          let a = Interp.run ~seed:5 ~sched:(sched ()) p in
          let b = Interp_ref.run ~seed:5 ~sched:(sched ()) p in
          a.status = b.status && a.steps = b.steps && a.crashes = b.crashes
          && a.reads = b.reads && a.outputs = b.outputs && a.counters = b.counters
          && a.syscalls = b.syscalls && a.final_heap = b.final_heap)
        scheds)

(* ------------------------------------------------------------------ *)
(* Log format compatibility                                             *)
(* ------------------------------------------------------------------ *)

let record_workload name =
  let bm = Option.get (Workloads.by_name name) in
  let p = Workloads.program bm in
  ( p,
    Light_core.Light.record ~variant:Light_core.Light.v_both
      ~sched:(Workloads.scheduler ~seed:3 bm) ~seed:3 p )

let test_v2_reader () =
  let p, r = record_workload "jgf-series" in
  let txt = Light_core.Log.to_string_v2 r.log in
  Alcotest.(check bool) "v2 header" true (String.length txt >= 12 && String.sub txt 0 12 = "light-log v2");
  let log2 = Light_core.Log.of_string txt in
  let report = Light_core.Replayer.solve log2 in
  let sch =
    match report.schedule with
    | Some sch -> sch
    | None -> Alcotest.fail "v2-parsed log unsolvable"
  in
  (* witness seeding must survive the serialization: first-descent solve *)
  Alcotest.(check int) "0 backtracks" 0 report.solver_stats.backtracks;
  let replay = Light_core.Replayer.replay p ~plan:r.plan sch in
  Alcotest.(check (list string))
    "v2 replay faithful" []
    (Interp.replay_matches ~original:r.outcome ~replay)

let test_v3_roundtrip () =
  let _, r = record_workload "dacapo-avrora" in
  let txt = Light_core.Log.to_string r.log in
  Alcotest.(check bool) "v3 header" true (String.length txt >= 12 && String.sub txt 0 12 = "light-log v3");
  let log2 = Light_core.Log.of_string txt in
  Alcotest.(check bool) "v3 roundtrip preserves the log" true (log2 = r.log)

let () =
  Alcotest.run "equiv"
    [
      ( "interp",
        [
          Alcotest.test_case "28 workloads x 2 schedulers" `Slow test_workloads_equiv;
          QCheck_alcotest.to_alcotest equiv_prop;
        ] );
      ( "log-format",
        [
          Alcotest.test_case "v2 parses, solves first-descent, replays" `Quick
            test_v2_reader;
          Alcotest.test_case "v3 round-trips" `Quick test_v3_roundtrip;
        ] );
    ]
