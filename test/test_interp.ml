(* Interpreter semantics: arithmetic, control flow, heap, locks,
   wait/notify, spawn/join, crashes, determinism. *)

open Runtime

let run ?(seed = 1) ?(sched = (Sched.round_robin ())) src =
  let p = Lang.Check.validate_exn (Lang.Parser.parse_program src) in
  Interp.run ~seed ~sched p

let outputs_of (o : Interp.outcome) : string list =
  List.concat_map snd o.outputs

let main_prints src expected () =
  let o = run src in
  Alcotest.(check (list string)) "prints" expected (outputs_of o);
  Alcotest.(check bool) "finished" true (o.status = Interp.AllFinished);
  Alcotest.(check int) "no crashes" 0 (List.length o.crashes)

let crashes_with src fragment () =
  let o = run src in
  match o.crashes with
  | [ c ] ->
    let contains hay needle =
      let n = String.length needle and h = String.length hay in
      let rec go i = i + n <= h && (String.sub hay i n = needle || go (i + 1)) in
      n = 0 || go 0
    in
    Alcotest.(check bool)
      (Printf.sprintf "crash message %S contains %S" c.msg fragment)
      true (contains c.msg fragment)
  | cs -> Alcotest.failf "expected 1 crash, got %d" (List.length cs)

(* ------------------------------------------------------------------ *)

let arith = main_prints "main { x = (3 + 4) * 2 - 10 / 2; print x; print x % 3; }" [ "9"; "0" ]
let bools =
  main_prints
    "main { a = true && false; b = !a || (1 < 2); print a; print b; print 1 == 1; }"
    [ "false"; "true"; "true" ]

let strings =
  main_prints {|main { s = "ab" + "cd"; print s; n = #strlen(s); print n; }|} [ "abcd"; "4" ]

let control =
  main_prints
    "main { x = 0; i = 0; while (i < 5) { if (i % 2 == 0) { x = x + i; } i = i + 1; } print x; }"
    [ "6" ]

let heap =
  main_prints
    "class P { x; y; } main { p = new P; p.x = 3; p.y = p.x * 2; q = p; print q.y; }"
    [ "6" ]

let arrays =
  main_prints
    "main { a = new[5]; i = 0; while (i < 5) { a[i] = i * i; i = i + 1; } print a[4] + a[3]; }"
    [ "25" ]

let maps =
  main_prints
    {|main { m = newmap; m{"a"} = 1; m{2} = "two"; print m{"a"}; print m{2}; print m{"missing"}; h = maphas(m, 2); print h; }|}
    [ "1"; "two"; "null"; "true" ]

let functions =
  main_prints
    "fn fib(n) { if (n < 2) { return n; } a = fib(n - 1); b = fib(n - 2); return a + b; } main { x = fib(10); print x; }"
    [ "55" ]

let opaques =
  main_prints
    "main { a = #floor_sqrt(17); print a; b = #mix(2, 3); c = #mix(2, 3); print b == c; }"
    [ "4"; "true" ]

(* ---- crashes ---- *)

let npe = crashes_with "class C { f; } main { x = null; y = x.f; }" "null dereference"
let div0 = crashes_with "main { x = 0; y = 10 / x; }" "division by zero"
let oob = crashes_with "main { a = new[3]; x = a[3]; }" "out of bounds"
let oob_neg = crashes_with "main { a = new[3]; i = 0 - 1; x = a[i]; }" "out of bounds"
let assert_fail = crashes_with "main { assert 1 > 2; }" "assertion failed"
let type_err = crashes_with "main { x = 1 + true; }" "type error"
let unbound = crashes_with "main { y = zzz + 1; }" "unbound local"
let bad_unlock = crashes_with "class L {} main { l = new L; unlock l; }" "not held"
let bad_wait = crashes_with "class L {} main { l = new L; wait l; }" "without holding"

let crash_kills_thread_only () =
  let o =
    run
      "global g; fn bad() { x = 1 / 0; } main { g = 0; spawn t = bad(); join t; g = 5; print g; }"
  in
  Alcotest.(check (list string)) "main continues" [ "5" ] (outputs_of o);
  Alcotest.(check int) "one crash" 1 (List.length o.crashes);
  Alcotest.(check bool) "finished" true (o.status = Interp.AllFinished)

(* ---- concurrency ---- *)

let locks_exclusion () =
  (* with sync the result is always exact *)
  List.iter
    (fun seed ->
      let o =
        run ~sched:(Sched.random ~seed)
          "class C { n; } global c; global l;
           fn w(k) { while (k > 0) { sync (l) { c.n = c.n + 1; } k = k - 1; } }
           main { l = new C; c = new C; c.n = 0;
                  spawn a = w(25); spawn b = w(25); join a; join b; print c.n; }"
      in
      Alcotest.(check (list string)) "exact count" [ "50" ] (outputs_of o))
    [ 1; 2; 3; 4; 5 ]

let reentrant_locks =
  main_prints
    "class L { n; } global l;
     main { l = new L; sync (l) { sync (l) { lock l; l.n = 7; unlock l; } } print l.n; }"
    [ "7" ]

let lock_blocks () =
  (* without the lock, races lose updates under some seed *)
  let lost = ref false in
  for seed = 1 to 20 do
    let o =
      run ~sched:(Sched.random ~seed)
        "class C { n; } global c;
         fn w(k) { while (k > 0) { c.n = c.n + 1; k = k - 1; } }
         main { c = new C; c.n = 0; spawn a = w(25); spawn b = w(25); join a; join b; print c.n; }"
    in
    if outputs_of o <> [ "50" ] then lost := true
  done;
  Alcotest.(check bool) "some seed loses updates" true !lost

let deadlock_detected () =
  (* the classic lock-order inversion: some seed must interleave the two
     acquisitions and deadlock *)
  let src =
    "class L {} global l1; global l2;
     fn a() { sync (l1) { yield; yield; yield; sync (l2) { nop; } } }
     fn b() { sync (l2) { yield; yield; yield; sync (l1) { nop; } } }
     main { l1 = new L; l2 = new L; spawn x = a(); spawn y = b(); join x; join y; }"
  in
  let found = ref false in
  for seed = 1 to 50 do
    if not !found then
      match (run ~sched:(Sched.random ~seed) src).status with
      | Interp.Deadlock _ -> found := true
      | _ -> ()
  done;
  Alcotest.(check bool) "some seed deadlocks" true !found

let wait_notify =
  main_prints
    "class B { flag; } global b;
     fn waiter() { sync (b) { while (b.flag == 0) { wait b; } } print 2; }
     main { b = new B; b.flag = 0; spawn w = waiter(); print 1;
            sync (b) { b.flag = 1; notify b; } join w; print 3; }"
    [ "1"; "3"; "2" ]
(* note: outputs are per-thread; main prints 1,3 and the waiter prints 2 *)

let notifyall_wakes_all () =
  let o =
    run
      "class B { flag; n; } global b;
       fn waiter() { sync (b) { while (b.flag == 0) { wait b; } b.n = b.n + 1; } }
       main { b = new B; b.flag = 0; b.n = 0;
              spawn w1 = waiter(); spawn w2 = waiter(); spawn w3 = waiter();
              yield; yield; yield;
              sync (b) { b.flag = 1; notifyall b; }
              join w1; join w2; join w3; print b.n; }"
  in
  Alcotest.(check (list string)) "all three woke" [ "3" ] (outputs_of o)

let join_waits () =
  let o =
    run
      "global g; fn w() { i = 0; while (i < 50) { i = i + 1; } g = 1; }
       main { g = 0; spawn t = w(); join t; print g; }"
  in
  Alcotest.(check (list string)) "join ordered" [ "1" ] (outputs_of o)

let thread_ids_deterministic () =
  (* object ids must be thread-deterministic: same per-thread allocations
     across different schedules *)
  let src =
    "class C { f; } global g;
     fn w() { x = new C; y = new C; x.f = y; return x; }
     main { g = 0; spawn a = w(); spawn b = w(); join a; join b; print 1; }"
  in
  let o1 = run ~sched:(Sched.random ~seed:1) src in
  let o2 = run ~sched:(Sched.random ~seed:9) src in
  Alcotest.(check bool) "both finish" true
    (o1.status = Interp.AllFinished && o2.status = Interp.AllFinished)

let seeded_determinism () =
  let src =
    "global x; fn w(k) { while (k > 0) { x = x + k; k = k - 1; } }
     main { x = 0; spawn a = w(9); spawn b = w(7); join a; join b; print x; }"
  in
  let t1 = (run ~sched:(Sched.sticky ~seed:4 ~stickiness:3) src).reads in
  let t2 = (run ~sched:(Sched.sticky ~seed:4 ~stickiness:3) src).reads in
  Alcotest.(check bool) "same seed, same reads" true (t1 = t2)

let syscall_capture () =
  let o = run "main { t = @time(); r = @rand(100); print r >= 0 && r < 100; }" in
  Alcotest.(check (list string)) "rand in range" [ "true" ] (outputs_of o);
  Alcotest.(check int) "two syscalls recorded" 2 (List.length o.syscalls)

let counters_count_ghosts () =
  (* a spawn/join pair produces ghost accesses: counters are positive even
     without field accesses *)
  let o = run "fn w() { nop; } main { spawn t = w(); join t; }" in
  let main_d = List.assoc 1 o.counters in
  Alcotest.(check bool) "main ticked for ghosts" true (main_d >= 2)

let step_limit () =
  let o =
    Interp.run ~max_steps:100 ~sched:(Sched.round_robin ())
      (Lang.Check.validate_exn (Lang.Parser.parse_program "main { x = 0; while (true) { x = x + 1; } }"))
  in
  Alcotest.(check bool) "hits limit" true (o.status = Interp.StepLimit)

let round_robin_runs_identical () =
  (* regression: [round_robin] used to be a top-level value whose rotation
     cursor was allocated once at module init, so the schedule of one run
     leaked into the next (and across domains).  As a [unit -> t]
     constructor, two fresh instances must produce identical schedules. *)
  let src =
    "global x; fn w(v) { x = x + v; x = x * v; } \
     main { x = 0; spawn a = w(2); spawn b = w(3); join a; join b; print x; }"
  in
  let p = Lang.Check.validate_exn (Lang.Parser.parse_program src) in
  let go () = Interp.run ~collect_trace:true ~sched:(Sched.round_robin ()) p in
  let o1 = go () in
  let o2 = go () in
  let sched_of (o : Interp.outcome) =
    List.map (fun (a : Event.access) -> (a.tid, a.c)) o.trace
  in
  Alcotest.(check (list (pair int int))) "identical schedules" (sched_of o1) (sched_of o2);
  Alcotest.(check (list string)) "identical outputs" (outputs_of o1) (outputs_of o2)

let oracle_detects_difference () =
  let src =
    "global x; fn w(v) { x = v; } main { x = 0; spawn a = w(1); spawn b = w(2); join a; join b; y = x; print y; }"
  in
  let o1 = run ~sched:(Sched.scripted [ 1; 1; 101; 101; 101; 102; 102; 102; 1 ]) src in
  let o2 = run ~sched:(Sched.scripted [ 1; 1; 102; 102; 102; 101; 101; 101; 1 ]) src in
  if outputs_of o1 <> outputs_of o2 then
    Alcotest.(check bool) "oracle flags mismatch" true
      (Interp.replay_matches ~original:o1 ~replay:o2 <> [])
  else Alcotest.(check bool) "schedules coincided" true true

let () =
  Alcotest.run "interp"
    [
      ( "sequential",
        [
          Alcotest.test_case "arithmetic" `Quick arith;
          Alcotest.test_case "booleans" `Quick bools;
          Alcotest.test_case "strings" `Quick strings;
          Alcotest.test_case "control flow" `Quick control;
          Alcotest.test_case "objects" `Quick heap;
          Alcotest.test_case "arrays" `Quick arrays;
          Alcotest.test_case "maps" `Quick maps;
          Alcotest.test_case "recursion" `Quick functions;
          Alcotest.test_case "opaque ops deterministic" `Quick opaques;
        ] );
      ( "crashes",
        [
          Alcotest.test_case "null deref" `Quick npe;
          Alcotest.test_case "division by zero" `Quick div0;
          Alcotest.test_case "index out of bounds" `Quick oob;
          Alcotest.test_case "negative index" `Quick oob_neg;
          Alcotest.test_case "assertion" `Quick assert_fail;
          Alcotest.test_case "type error" `Quick type_err;
          Alcotest.test_case "unbound variable" `Quick unbound;
          Alcotest.test_case "unlock not held" `Quick bad_unlock;
          Alcotest.test_case "wait without monitor" `Quick bad_wait;
          Alcotest.test_case "crash kills only its thread" `Quick crash_kills_thread_only;
        ] );
      ( "concurrency",
        [
          Alcotest.test_case "mutual exclusion" `Quick locks_exclusion;
          Alcotest.test_case "reentrant monitors" `Quick reentrant_locks;
          Alcotest.test_case "races lose updates" `Quick lock_blocks;
          Alcotest.test_case "deadlock detection" `Quick deadlock_detected;
          Alcotest.test_case "wait/notify" `Quick wait_notify;
          Alcotest.test_case "notifyAll" `Quick notifyall_wakes_all;
          Alcotest.test_case "join ordering" `Quick join_waits;
          Alcotest.test_case "thread-deterministic ids" `Quick thread_ids_deterministic;
          Alcotest.test_case "seeded runs deterministic" `Quick seeded_determinism;
          Alcotest.test_case "syscalls captured" `Quick syscall_capture;
          Alcotest.test_case "ghost accesses tick counters" `Quick counters_count_ghosts;
          Alcotest.test_case "step limit" `Quick step_limit;
          Alcotest.test_case "fresh round-robin runs identical" `Quick
            round_robin_runs_identical;
          Alcotest.test_case "oracle detects divergence" `Quick oracle_detects_difference;
        ] );
    ]
