lib/core/replayer.ml: Array Constraints Dlsolver Event Hashtbl Interp Lang List Loc Log Option Plan Runtime Sched Unix Value
