lib/core/light.ml: Instrument Interp Lang Log Metrics Plan Recorder Replayer Runtime Sched
