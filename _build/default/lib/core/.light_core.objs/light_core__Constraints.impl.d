lib/core/constraints.ml: Array Dlsolver Hashtbl List Loc Log Option Runtime
