lib/core/light.mli: Interp Lang Log Metrics Plan Recorder Replayer Runtime Sched
