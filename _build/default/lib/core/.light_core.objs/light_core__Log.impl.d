lib/core/log.ml: Buffer Char Fmt List Loc Option Printf Runtime Scanf String Value
