lib/core/recorder.ml: Event Hashtbl Interp List Loc Log Metrics Plan Runtime
