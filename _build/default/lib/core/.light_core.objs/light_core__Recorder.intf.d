lib/core/recorder.mli: Event Interp Log Metrics Plan Runtime
