(** Offline constraint generation (Section 4.2, Equation 1).

    Every recorded artifact is normalized to an {e interval} of same-thread
    accesses to one location:

    - a dep [w -> [rf..rl]] yields a read interval [[rf..rl]] with source
      [w], plus a singleton write interval for [w] when [w] is not already
      interior to a recorded interval of its thread;
    - an O1 range yields an interval [[lo..hi]] with its [w_in] source;
      referenced sources again materialize as singleton write intervals.

    The constraint system over the order variables [O(tid,c)]:

    + {b thread order}: for the referenced events of each thread, sorted by
      counter, [O(e_i) < O(e_{i+1})] — the intra-thread order the paper
      derives for free from thread-local counters;
    + {b dependence}: [O(src) < O(start I)] for each sourced interval;
    + {b initial-value reads}: an interval reading the virtual initialization
      write must end before the start of every write-bearing interval on the
      location (Java default initialization makes this a flow dependence on
      the allocation; the paper leaves it implicit);
    + {b noninterference}: Equation 1's disjunction, generalized from single
      dependences to intervals.  The {e protected zone} of an interval [I]
      that reads is [(zstart(I) .. end I]] where [zstart(I)] is its source
      write when it has one (the reads at the start of [I] obtain their value
      from that write, so no other write may land after it and before the
      last read), and [start I] otherwise (its reads see its own writes).
      For every write-bearing interval [J]:
      [O(end I) < O(start J) \/ O(end J) < O(zstart I)].
      When [zstart(I)] is itself an event of [J] it is necessarily [J]'s
      last write and no constraint is needed beyond the hard source edge.

    Literals are ordered by the recording observation stamps so the original
    schedule acts as an implicit witness for the DPLL search. *)

open Runtime

type interval = {
  iv_loc : Loc.t;
  start_e : Log.evt;
  end_e : Log.evt;
  writes : bool;
  reads : bool;
  src : Log.evt option option;
      (** [None]: no incoming dependence; [Some None]: virtual init write;
          [Some (Some w)]: recorded write *)
  obs : int;
}

type t = {
  problem : Dlsolver.Idl.problem;
  vars : (Log.evt, int) Hashtbl.t;
  evts : Log.evt array;          (** var index -> event *)
  intervals : interval list;
  n_hard : int;
  n_clauses : int;
}

module LMap = Loc.Map

let intervals_of_log (log : Log.t) : interval list =
  let base =
    List.map
      (fun (d : Log.dep) ->
        {
          iv_loc = d.loc;
          start_e = d.rf;
          end_e = (fst d.rf, d.rl_c);
          writes = false;
          reads = true;
          src = Some d.w;
          obs = d.dep_obs;
        })
      log.deps
    @ List.map
        (fun (r : Log.range) ->
          {
            iv_loc = r.loc;
            start_e = (r.rt, r.lo);
            end_e = (r.rt, r.hi);
            writes = r.has_write;
            reads = true;  (* only runs containing reads are recorded *)
            src = (if r.prefix_reads then Some r.w_in else None);
            obs = r.rng_obs;
          })
        log.ranges
  in
  (* group by location to materialize referenced writes *)
  let by_loc =
    List.fold_left
      (fun m iv ->
        LMap.update iv.iv_loc
          (fun prev -> Some (iv :: Option.value ~default:[] prev))
          m)
      LMap.empty base
  in
  let singletons =
    LMap.fold
      (fun loc ivs acc ->
        let covered (t, c) =
          List.exists
            (fun iv ->
              fst iv.start_e = t && snd iv.start_e <= c && c <= snd iv.end_e
              && Loc.equal iv.iv_loc loc)
            ivs
        in
        let srcs =
          List.filter_map (fun iv -> match iv.src with Some (Some w) -> Some (w, iv.obs) | _ -> None) ivs
        in
        let seen = Hashtbl.create 8 in
        List.fold_left
          (fun acc (w, obs) ->
            if Hashtbl.mem seen w || covered w then acc
            else begin
              Hashtbl.add seen w ();
              {
                iv_loc = loc;
                start_e = w;
                end_e = w;
                writes = true;
                reads = false;
                src = None;
                (* heuristic stamp: the write happened just before its reader *)
                obs = obs - 1;
                }
              :: acc
            end)
          acc srcs)
      by_loc []
  in
  base @ singletons

let generate (log : Log.t) : t =
  let intervals = intervals_of_log log in
  (* variable per referenced event *)
  let vars : (Log.evt, int) Hashtbl.t = Hashtbl.create 1024 in
  let evts_rev = ref [] in
  let var (e : Log.evt) : int =
    match Hashtbl.find_opt vars e with
    | Some v -> v
    | None ->
      let v = Hashtbl.length vars in
      Hashtbl.add vars e v;
      evts_rev := e :: !evts_rev;
      v
  in
  List.iter
    (fun iv ->
      ignore (var iv.start_e);
      ignore (var iv.end_e);
      match iv.src with Some (Some w) -> ignore (var w) | _ -> ())
    intervals;
  let hard = ref [] in
  let add_hard a b = hard := Dlsolver.Idl.lt a b :: !hard in
  (* thread order *)
  let by_tid : (int, int list ref) Hashtbl.t = Hashtbl.create 16 in
  Hashtbl.iter
    (fun (t, c) _ ->
      match Hashtbl.find_opt by_tid t with
      | Some l -> l := c :: !l
      | None -> Hashtbl.add by_tid t (ref [ c ]))
    vars;
  Hashtbl.iter
    (fun t cs ->
      let sorted = List.sort_uniq compare !cs in
      let rec chain = function
        | a :: (b :: _ as rest) ->
          add_hard (var (t, a)) (var (t, b));
          chain rest
        | _ -> ()
      in
      chain sorted)
    by_tid;
  (* dependence edges and init constraints *)
  let by_loc =
    List.fold_left
      (fun m iv ->
        LMap.update iv.iv_loc (fun p -> Some (iv :: Option.value ~default:[] p)) m)
      LMap.empty intervals
  in
  LMap.iter
    (fun _ ivs ->
      List.iter
        (fun iv ->
          match iv.src with
          | Some (Some w) -> add_hard (var w) (var iv.start_e)
          | Some None | None -> ())
        ivs)
    by_loc;
  (* noninterference: protect each reading interval's zone from every
     write-bearing interval *)
  let clauses = ref [] in
  let inside (t, c) (j : interval) =
    fst j.start_e = t && snd j.start_e <= c && c <= snd j.end_e
  in
  LMap.iter
    (fun _ ivs ->
      let sorted = List.sort (fun a b -> compare a.obs b.obs) ivs in
      List.iter
        (fun i ->
          if i.reads then
            List.iter
              (fun j ->
                if j != i && j.writes then
                  match i.src with
                  | Some None ->
                    (* initial-value reads precede every write on the loc *)
                    add_hard (var i.end_e) (var j.start_e)
                  | Some (Some w) ->
                    if not (inside w j) then begin
                      (* the first literal matches the original order when i
                         was observed before j *)
                      let lits =
                        if i.obs <= j.obs then
                          [| Dlsolver.Idl.lt (var i.end_e) (var j.start_e);
                             Dlsolver.Idl.lt (var j.end_e) (var w) |]
                        else
                          [| Dlsolver.Idl.lt (var j.end_e) (var w);
                             Dlsolver.Idl.lt (var i.end_e) (var j.start_e) |]
                      in
                      clauses := (max i.obs j.obs, lits) :: !clauses
                    end
                  | None ->
                    if fst i.start_e <> fst j.start_e then begin
                      let lits =
                        if i.obs <= j.obs then
                          [| Dlsolver.Idl.lt (var i.end_e) (var j.start_e);
                             Dlsolver.Idl.lt (var j.end_e) (var i.start_e) |]
                        else
                          [| Dlsolver.Idl.lt (var j.end_e) (var i.start_e);
                             Dlsolver.Idl.lt (var i.end_e) (var j.start_e) |]
                      in
                      clauses := (max i.obs j.obs, lits) :: !clauses
                    end
              )
              sorted)
        sorted)
    by_loc;
  let clause_arr =
    List.sort (fun (o1, _) (o2, _) -> compare o1 o2) !clauses
    |> List.map snd |> Array.of_list
  in
  let problem =
    { Dlsolver.Idl.nvars = Hashtbl.length vars; hard = List.rev !hard; clauses = clause_arr }
  in
  {
    problem;
    vars;
    evts = Array.of_list (List.rev !evts_rev);
    intervals;
    n_hard = List.length problem.hard;
    n_clauses = Array.length clause_arr;
  }
