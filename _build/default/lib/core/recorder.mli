(** The Light recording algorithm (Algorithm 1) with its optimizations,
    installed as interpreter hooks.

    Per shared access (including the ghost accesses that model sync
    primitives, Section 4.3): writes atomically update the last-write map;
    reads obtain it through the optimistic validate of Section 2.3 and
    record the flow dependence in a thread-local buffer.  The [prec] map
    (Algorithm 1, lines 7/9) compresses a write followed by several reads
    from one thread; O1 (Lemma 4.3) records only the endpoints of
    non-interleaved same-thread runs; O2 (Lemma 4.2) skips recording at
    sites the static analysis proves consistently lock-guarded. *)

open Runtime

type variant = { o1 : bool; o2 : bool }

val v_basic : variant
val v_o1 : variant
val v_both : variant
val variant_name : variant -> string

type t

val create : ?variant:variant -> ?weights:Metrics.Cost.weights -> Plan.t -> t

val hooks : t -> Interp.hooks
(** Interpreter hooks for a recording run. *)

val finalize : t -> outcome:Interp.outcome -> Log.t
(** Flush open records and assemble the log (merging the thread-local
    buffers, attaching syscall values and final counters). *)

val on_access : t -> Event.access -> unit
(** Exposed for white-box tests; [hooks] routes accesses here. *)

val meter : t -> Metrics.Cost.meter
(** The cost accumulator charged by this recorder's hooks. *)
