lib/instrument/transformer.ml: Analysis Ast Hashtbl Lang List Runtime
