lib/baselines/stride.ml: Array Event Hashtbl Interp List Loc Metrics Option Runtime Value
