lib/baselines/chimera.ml: Analysis Array Ast Event Hashtbl Interp Lang List Loc Metrics Option Printf Runtime Value
