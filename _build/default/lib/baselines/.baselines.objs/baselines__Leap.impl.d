lib/baselines/leap.ml: Array Event Hashtbl Interp List Loc Metrics Option Runtime Value
