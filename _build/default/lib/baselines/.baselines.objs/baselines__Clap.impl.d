lib/baselines/clap.ml: Array Ast Hashtbl Interp Lang List Metrics Printf Runtime Sched String Value
