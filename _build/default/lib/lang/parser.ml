(** Recursive-descent parser.

    Surface expressions may nest heap reads ([x.f], [a\[i\]], [m{k}], globals);
    the parser lowers them to the simple (three-address) statement format of
    {!Ast} by hoisting each heap read into a fresh temporary, mirroring the
    paper's reduction of compound statements (Section 3.1). *)

open Ast

exception Parse_error of string * int

(* ------------------------------------------------------------------ *)
(* Surface expressions (internal)                                      *)
(* ------------------------------------------------------------------ *)

type sexpr =
  | SInt of int
  | SBool of bool
  | SNull
  | SStr of string
  | SName of string            (* unresolved: local or global *)
  | SBin of binop * sexpr * sexpr
  | SUn of unop * sexpr
  | SField of sexpr * string
  | SIndex of sexpr * sexpr
  | SMapGet of sexpr * sexpr

type state = {
  mutable toks : Lexer.located list;
  globals : string list;         (* pre-scanned global names *)
  mutable sid : int;             (* site id allocator *)
  mutable tmp : int;             (* temp name allocator *)
}

let fail st msg =
  let line = match st.toks with { line; _ } :: _ -> line | [] -> 0 in
  raise (Parse_error (msg, line))

let cur st = match st.toks with t :: _ -> t.tok | [] -> Lexer.EOF
let cur_line st = match st.toks with t :: _ -> t.line | [] -> 0
let advance st = match st.toks with _ :: r -> st.toks <- r | [] -> ()

let expect st tok =
  if cur st = tok then advance st
  else
    fail st
      (Printf.sprintf "expected %s but found %s" (Lexer.token_name tok)
         (Lexer.token_name (cur st)))

let expect_ident st =
  match cur st with
  | Lexer.IDENT s -> advance st; s
  | t -> fail st (Printf.sprintf "expected identifier, found %s" (Lexer.token_name t))

let fresh_sid st = st.sid <- st.sid + 1; st.sid
let fresh_tmp st = st.tmp <- st.tmp + 1; Printf.sprintf "$t%d" st.tmp

let mk st node = { sid = fresh_sid st; line = cur_line st; node }

(* ------------------------------------------------------------------ *)
(* Expression parsing (precedence climbing)                            *)
(* ------------------------------------------------------------------ *)

let binop_of_token = function
  | Lexer.OROR -> Some (Or, 1)
  | Lexer.ANDAND -> Some (And, 2)
  | Lexer.EQEQ -> Some (Eq, 3)
  | Lexer.NEQ -> Some (Ne, 3)
  | Lexer.LT -> Some (Lt, 4)
  | Lexer.LE -> Some (Le, 4)
  | Lexer.GT -> Some (Gt, 4)
  | Lexer.GE -> Some (Ge, 4)
  | Lexer.PLUS -> Some (Add, 5)
  | Lexer.MINUS -> Some (Sub, 5)
  | Lexer.STAR -> Some (Mul, 6)
  | Lexer.SLASH -> Some (Div, 6)
  | Lexer.PERCENT -> Some (Mod, 6)
  | _ -> None

let rec parse_sexpr st = parse_bin st 1

and parse_bin st minprec =
  let lhs = ref (parse_unary st) in
  let continue_ = ref true in
  while !continue_ do
    match binop_of_token (cur st) with
    | Some (op, prec) when prec >= minprec ->
      advance st;
      let rhs = parse_bin st (prec + 1) in
      lhs := SBin (op, !lhs, rhs)
    | _ -> continue_ := false
  done;
  !lhs

and parse_unary st =
  match cur st with
  | Lexer.BANG -> advance st; SUn (Not, parse_unary st)
  | Lexer.MINUS -> (
    advance st;
    (* fold negative literals so printing and parsing are inverses *)
    match parse_unary st with
    | SInt n -> SInt (-n)
    | e -> SUn (Neg, e))
  | _ -> parse_postfix st

and parse_postfix st =
  let e = ref (parse_primary st) in
  let continue_ = ref true in
  while !continue_ do
    match cur st with
    | Lexer.DOT ->
      advance st;
      let f = expect_ident st in
      e := SField (!e, f)
    | Lexer.LBRACKET ->
      advance st;
      let i = parse_sexpr st in
      expect st Lexer.RBRACKET;
      e := SIndex (!e, i)
    | Lexer.LBRACE ->
      advance st;
      let k = parse_sexpr st in
      expect st Lexer.RBRACE;
      e := SMapGet (!e, k)
    | _ -> continue_ := false
  done;
  !e

and parse_primary st =
  match cur st with
  | Lexer.INT n -> advance st; SInt n
  | Lexer.STRING s -> advance st; SStr s
  | Lexer.KW "true" -> advance st; SBool true
  | Lexer.KW "false" -> advance st; SBool false
  | Lexer.KW "null" -> advance st; SNull
  | Lexer.IDENT x -> advance st; SName x
  | Lexer.LPAREN ->
    advance st;
    let e = parse_sexpr st in
    expect st Lexer.RPAREN;
    e
  | t -> fail st (Printf.sprintf "expected expression, found %s" (Lexer.token_name t))

(* ------------------------------------------------------------------ *)
(* Lowering: surface exprs -> pure exprs + hoisted loads               *)
(* ------------------------------------------------------------------ *)

(* [lower st ~locals emit e] returns a pure expression, appending hoisted
   Load/GlobalLoad statements via [emit].  [locals] is the set of names known
   to be function-local (params and assigned names); a name that is a declared
   global and not local resolves to a global access. *)
let rec lower st ~locals emit (e : sexpr) : expr =
  match e with
  | SInt n -> Int n
  | SBool b -> Bool b
  | SNull -> Null
  | SStr s -> Str s
  | SName x ->
    if (not (List.mem x locals)) && List.mem x st.globals then begin
      let t = fresh_tmp st in
      emit (mk st (GlobalLoad (t, x)));
      Var t
    end
    else Var x
  | SBin (op, a, b) ->
    let a' = lower st ~locals emit a in
    let b' = lower st ~locals emit b in
    Binop (op, a', b')
  | SUn (op, a) -> Unop (op, lower st ~locals emit a)
  | SField (o, f) ->
    let o' = lower st ~locals emit o in
    let t = fresh_tmp st in
    emit (mk st (Load (t, o', f)));
    Var t
  | SIndex (a, i) ->
    let a' = lower st ~locals emit a in
    let i' = lower st ~locals emit i in
    let t = fresh_tmp st in
    emit (mk st (LoadIdx (t, a', i')));
    Var t
  | SMapGet (m, k) ->
    let m' = lower st ~locals emit m in
    let k' = lower st ~locals emit k in
    let t = fresh_tmp st in
    emit (mk st (MapGet (t, m', k')));
    Var t

(* ------------------------------------------------------------------ *)
(* Statement parsing                                                   *)
(* ------------------------------------------------------------------ *)

(* Locals tracking: a mutable list per function body of names assigned or
   bound (params, assignment targets, spawn handles, call results). *)

type fenv = { mutable locals : string list }

let note_local fenv x = if not (List.mem x fenv.locals) then fenv.locals <- x :: fenv.locals

let parse_args st _fenv emit_lowered =
  expect st Lexer.LPAREN;
  let args = ref [] in
  if cur st <> Lexer.RPAREN then begin
    let rec loop () =
      let e = parse_sexpr st in
      args := e :: !args;
      if cur st = Lexer.COMMA then (advance st; loop ())
    in
    loop ()
  end;
  expect st Lexer.RPAREN;
  List.map emit_lowered (List.rev !args)

(* Parse the condition of if/while and return (prelude builder, expr builder).
   Both are functions so that the while-loop can re-lower the condition at the
   end of its body with fresh site ids but identical temporaries. *)
let lower_cond st fenv (c : sexpr) : (unit -> stmt list) * expr =
  (* First lowering fixes the temp names; replays reuse them with fresh sids. *)
  let saved_tmp = st.tmp in
  let buf = ref [] in
  let emit s = buf := s :: !buf in
  let e = lower st ~locals:fenv.locals emit c in
  let first = List.rev !buf in
  let first_used = ref false in
  let build () =
    if not !first_used then (first_used := true; first)
    else begin
      let t = st.tmp in
      st.tmp <- saved_tmp;
      let buf = ref [] in
      let emit s = buf := s :: !buf in
      let _ = lower st ~locals:fenv.locals emit c in
      st.tmp <- max t st.tmp;
      List.rev !buf
    end
  in
  (build, e)

let rec parse_block st fenv : block =
  expect st Lexer.LBRACE;
  let stmts = ref [] in
  while cur st <> Lexer.RBRACE do
    let ss = parse_stmt st fenv in
    stmts := List.rev_append ss !stmts
  done;
  expect st Lexer.RBRACE;
  List.rev !stmts

(* Returns the list of lowered statements for one surface statement. *)
and parse_stmt st fenv : stmt list =
  let prelude = ref [] in
  let emit s = prelude := s :: !prelude in
  let lower_e e = lower st ~locals:fenv.locals emit e in
  let finish node = List.rev (mk st node :: !prelude) in
  match cur st with
  | Lexer.KW "if" ->
    advance st;
    expect st Lexer.LPAREN;
    let c = parse_sexpr st in
    expect st Lexer.RPAREN;
    let build, ce = lower_cond st fenv c in
    let b1 = parse_block st fenv in
    let b2 =
      if cur st = Lexer.KW "else" then begin
        advance st;
        if cur st = Lexer.KW "if" then parse_stmt st fenv else parse_block st fenv
      end
      else []
    in
    build () @ [ mk st (If (ce, b1, b2)) ]
  | Lexer.KW "while" ->
    advance st;
    expect st Lexer.LPAREN;
    let c = parse_sexpr st in
    expect st Lexer.RPAREN;
    let build, ce = lower_cond st fenv c in
    let body = parse_block st fenv in
    let pre = build () in
    let repeat = build () in
    pre @ [ mk st (While (ce, body @ repeat)) ]
  | Lexer.KW "sync" ->
    advance st;
    expect st Lexer.LPAREN;
    let m = parse_sexpr st in
    expect st Lexer.RPAREN;
    let me = lower_e m in
    let body = parse_block st fenv in
    finish (Sync (me, body))
  | Lexer.KW "spawn" ->
    advance st;
    let h = expect_ident st in
    note_local fenv h;
    expect st Lexer.ASSIGN;
    let f = expect_ident st in
    let args = parse_args st fenv lower_e in
    expect st Lexer.SEMI;
    finish (Spawn (h, f, args))
  | Lexer.KW "join" ->
    advance st;
    let e = lower_e (parse_sexpr st) in
    expect st Lexer.SEMI;
    finish (Join e)
  | Lexer.KW "lock" ->
    advance st;
    let e = lower_e (parse_sexpr st) in
    expect st Lexer.SEMI;
    finish (Lock e)
  | Lexer.KW "unlock" ->
    advance st;
    let e = lower_e (parse_sexpr st) in
    expect st Lexer.SEMI;
    finish (Unlock e)
  | Lexer.KW "wait" ->
    advance st;
    let e = lower_e (parse_sexpr st) in
    expect st Lexer.SEMI;
    finish (Wait e)
  | Lexer.KW "notify" ->
    advance st;
    let e = lower_e (parse_sexpr st) in
    expect st Lexer.SEMI;
    finish (Notify e)
  | Lexer.KW "notifyall" ->
    advance st;
    let e = lower_e (parse_sexpr st) in
    expect st Lexer.SEMI;
    finish (NotifyAll e)
  | Lexer.KW "assert" ->
    advance st;
    let e = lower_e (parse_sexpr st) in
    expect st Lexer.SEMI;
    finish (Assert e)
  | Lexer.KW "print" ->
    advance st;
    let e = lower_e (parse_sexpr st) in
    expect st Lexer.SEMI;
    finish (Print e)
  | Lexer.KW "return" ->
    advance st;
    if cur st = Lexer.SEMI then (advance st; finish (Return None))
    else begin
      let e = lower_e (parse_sexpr st) in
      expect st Lexer.SEMI;
      finish (Return (Some e))
    end
  | Lexer.KW "yield" -> advance st; expect st Lexer.SEMI; finish Yield
  | Lexer.KW "nop" -> advance st; expect st Lexer.SEMI; finish Nop
  | Lexer.IDENT f when (match st.toks with _ :: { tok = Lexer.LPAREN; _ } :: _ -> true | _ -> false) ->
    (* bare call statement *)
    advance st;
    let args = parse_args st fenv lower_e in
    expect st Lexer.SEMI;
    finish (Call (None, f, args))
  | Lexer.IDENT _ ->
    parse_assign st fenv
  | t -> fail st (Printf.sprintf "expected statement, found %s" (Lexer.token_name t))

(* Assignment / store statements.  The left-hand side is a postfix chain. *)
and parse_assign st fenv : stmt list =
  let prelude = ref [] in
  let emit s = prelude := s :: !prelude in
  let lower_e e = lower st ~locals:fenv.locals emit e in
  let finish node = List.rev (mk st node :: !prelude) in
  let lhs = parse_postfix st in
  expect st Lexer.ASSIGN;
  (* The right-hand side may be one of the special forms. *)
  let stmt_node =
    match lhs, cur st with
    | SName x, Lexer.KW "new" ->
      advance st;
      (match cur st with
       | Lexer.LBRACKET ->
         advance st;
         let n = lower_e (parse_sexpr st) in
         expect st Lexer.RBRACKET;
         mk_target st fenv x (fun x -> NewArray (x, n)) emit
       | _ ->
         let cls = expect_ident st in
         mk_target st fenv x (fun x -> New (x, cls)) emit)
    | SName x, Lexer.KW "newmap" ->
      advance st;
      mk_target st fenv x (fun x -> NewMap x) emit
    | SName x, Lexer.KW "maphas" ->
      advance st;
      expect st Lexer.LPAREN;
      let m = lower_e (parse_sexpr st) in
      expect st Lexer.COMMA;
      let k = lower_e (parse_sexpr st) in
      expect st Lexer.RPAREN;
      mk_target st fenv x (fun x -> MapHas (x, m, k)) emit
    | SName x, Lexer.SYS name ->
      advance st;
      let args = parse_args st fenv lower_e in
      mk_target st fenv x (fun x -> Syscall (x, name, args)) emit
    | SName x, Lexer.OP name ->
      advance st;
      let args = parse_args st fenv lower_e in
      mk_target st fenv x (fun x -> Opaque (x, name, args)) emit
    | SName x, Lexer.IDENT f
      when (match st.toks with _ :: { tok = Lexer.LPAREN; _ } :: _ -> true | _ -> false) ->
      advance st;
      let args = parse_args st fenv lower_e in
      mk_target st fenv x (fun x -> Call (Some x, f, args)) emit
    | SName x, _ ->
      let is_global = (not (List.mem x fenv.locals)) && List.mem x st.globals in
      let rhs_s = parse_sexpr st in
      (* direct forms when the rhs is a single heap access and the target is
         a local: avoids a temp, and makes printing/reparsing a fixpoint *)
      (match rhs_s with
      | SField (o, f) when not is_global ->
        note_local fenv x;
        Load (x, lower_e o, f)
      | SIndex (arr, i) when not is_global ->
        note_local fenv x;
        let a = lower_e arr in
        let i = lower_e i in
        LoadIdx (x, a, i)
      | SMapGet (m, k) when not is_global ->
        note_local fenv x;
        let m = lower_e m in
        let k = lower_e k in
        MapGet (x, m, k)
      | SName y
        when (not is_global)
             && (not (List.mem y fenv.locals))
             && List.mem y st.globals ->
        note_local fenv x;
        GlobalLoad (x, y)
      | _ ->
        let rhs = lower_e rhs_s in
        if is_global then GlobalStore (x, rhs)
        else (note_local fenv x; Assign (x, rhs)))
    | SField (o, f), _ ->
      let o' = lower_e o in
      let rhs = lower_e (parse_sexpr st) in
      Store (o', f, rhs)
    | SIndex (a, i), _ ->
      let a' = lower_e a in
      let i' = lower_e i in
      let rhs = lower_e (parse_sexpr st) in
      StoreIdx (a', i', rhs)
    | SMapGet (m, k), _ ->
      let m' = lower_e m in
      let k' = lower_e k in
      let rhs = lower_e (parse_sexpr st) in
      MapPut (m', k', rhs)
    | _ -> fail st "invalid assignment target"
  in
  expect st Lexer.SEMI;
  finish stmt_node

(* Resolve the assignment target [x]: a declared global (not shadowed by a
   local) becomes a GlobalStore through a temp; otherwise a local binding. *)
and mk_target st fenv (x : string) (build : string -> stmt_node) emit : stmt_node =
  if (not (List.mem x fenv.locals)) && List.mem x st.globals then begin
    let t = fresh_tmp st in
    emit (mk st (build t));
    GlobalStore (x, Var t)
  end
  else begin
    note_local fenv x;
    build x
  end

(* ------------------------------------------------------------------ *)
(* Top level                                                           *)
(* ------------------------------------------------------------------ *)

let prescan_globals (toks : Lexer.located list) : string list =
  let rec go acc = function
    | { Lexer.tok = Lexer.KW "global"; _ } :: { tok = Lexer.IDENT g; _ } :: rest ->
      go (g :: acc) rest
    | _ :: rest -> go acc rest
    | [] -> List.rev acc
  in
  go [] toks

(* reparsing printed programs must not generate temps colliding with the
   already-materialized "$tN" names *)
let prescan_tmps (toks : Lexer.located list) : int =
  List.fold_left
    (fun acc (t : Lexer.located) ->
      match t.tok with
      | Lexer.IDENT s
        when String.length s > 2 && s.[0] = '$' && s.[1] = 't' -> (
        match int_of_string_opt (String.sub s 2 (String.length s - 2)) with
        | Some n -> max acc n
        | None -> acc)
      | _ -> acc)
    0 toks

let parse_program (src : string) : program =
  let toks = Lexer.tokenize src in
  let st = { toks; globals = prescan_globals toks; sid = 0; tmp = prescan_tmps toks } in
  let classes = ref [] in
  let globals = ref [] in
  let fns = ref [] in
  let main = ref None in
  while cur st <> Lexer.EOF do
    match cur st with
    | Lexer.KW "class" ->
      advance st;
      let name = expect_ident st in
      expect st Lexer.LBRACE;
      let fields = ref [] in
      while cur st <> Lexer.RBRACE do
        let f = expect_ident st in
        expect st Lexer.SEMI;
        fields := f :: !fields
      done;
      expect st Lexer.RBRACE;
      classes := (name, List.rev !fields) :: !classes
    | Lexer.KW "global" ->
      advance st;
      let g = expect_ident st in
      expect st Lexer.SEMI;
      globals := g :: !globals
    | Lexer.KW "fn" ->
      advance st;
      let fname = expect_ident st in
      expect st Lexer.LPAREN;
      let params = ref [] in
      if cur st <> Lexer.RPAREN then begin
        let rec loop () =
          params := expect_ident st :: !params;
          if cur st = Lexer.COMMA then (advance st; loop ())
        in
        loop ()
      end;
      expect st Lexer.RPAREN;
      let fenv = { locals = List.rev !params } in
      let body = parse_block st fenv in
      fns := { fname; params = List.rev !params; body } :: !fns
    | Lexer.KW "main" ->
      advance st;
      let fenv = { locals = [] } in
      let body = parse_block st fenv in
      (match !main with
       | None -> main := Some body
       | Some _ -> fail st "duplicate main block")
    | t -> fail st (Printf.sprintf "expected top-level declaration, found %s" (Lexer.token_name t))
  done;
  match !main with
  | None -> raise (Parse_error ("program has no main block", 0))
  | Some m ->
    {
      classes = List.rev !classes;
      globals = List.rev !globals;
      fns = List.rev !fns;
      main = m;
    }

let parse_file (path : string) : program =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> parse_program (really_input_string ic (in_channel_length ic)))
