(** Pretty-printer for programs.  [Parser.parse_program (to_string p)] yields
    a program structurally equal to [p] up to site ids and temporaries (the
    printer emits the already-lowered simple form, which re-parses as such). *)

open Ast

let binop_str = function
  | Add -> "+" | Sub -> "-" | Mul -> "*" | Div -> "/" | Mod -> "%"
  | Eq -> "==" | Ne -> "!=" | Lt -> "<" | Le -> "<=" | Gt -> ">" | Ge -> ">="
  | And -> "&&" | Or -> "||"

let prec_of = function
  | Or -> 1 | And -> 2 | Eq | Ne -> 3 | Lt | Le | Gt | Ge -> 4
  | Add | Sub -> 5 | Mul | Div | Mod -> 6

let rec pp_expr ?(prec = 0) fmt (e : expr) =
  match e with
  | Int n -> if n < 0 then Fmt.pf fmt "(%d)" n else Fmt.pf fmt "%d" n
  | Bool b -> Fmt.pf fmt "%b" b
  | Null -> Fmt.pf fmt "null"
  | Str s -> Fmt.pf fmt "%S" s
  | Var x -> Fmt.pf fmt "%s" x
  | Binop (op, a, b) ->
    let p = prec_of op in
    let body fmt () =
      Fmt.pf fmt "%a %s %a" (pp_expr ~prec:p) a (binop_str op) (pp_expr ~prec:(p + 1)) b
    in
    if p < prec then Fmt.pf fmt "(%a)" body () else body fmt ()
  | Unop (Not, a) -> Fmt.pf fmt "!%a" (pp_expr ~prec:10) a
  | Unop (Neg, a) -> Fmt.pf fmt "-%a" (pp_expr ~prec:10) a

let pp_args fmt args = Fmt.(list ~sep:(any ", ") (pp_expr ~prec:0)) fmt args

let rec pp_stmt fmt (s : stmt) =
  let e = pp_expr ~prec:0 in
  match s.node with
  | Assign (x, v) -> Fmt.pf fmt "%s = %a;" x e v
  | Load (x, o, f) -> Fmt.pf fmt "%s = %a.%s;" x e o f
  | Store (o, f, v) -> Fmt.pf fmt "%a.%s = %a;" e o f e v
  | LoadIdx (x, a, i) -> Fmt.pf fmt "%s = %a[%a];" x e a e i
  | StoreIdx (a, i, v) -> Fmt.pf fmt "%a[%a] = %a;" e a e i e v
  | GlobalLoad (x, g) -> Fmt.pf fmt "%s = %s;" x g
  | GlobalStore (g, v) -> Fmt.pf fmt "%s = %a;" g e v
  | New (x, c) -> Fmt.pf fmt "%s = new %s;" x c
  | NewArray (x, n) -> Fmt.pf fmt "%s = new[%a];" x e n
  | NewMap x -> Fmt.pf fmt "%s = newmap;" x
  | MapGet (x, m, k) -> Fmt.pf fmt "%s = %a{%a};" x e m e k
  | MapPut (m, k, v) -> Fmt.pf fmt "%a{%a} = %a;" e m e k e v
  | MapHas (x, m, k) -> Fmt.pf fmt "%s = maphas(%a, %a);" x e m e k
  | If (c, b1, []) -> Fmt.pf fmt "if (%a) %a" e c pp_block b1
  | If (c, b1, b2) -> Fmt.pf fmt "if (%a) %a else %a" e c pp_block b1 pp_block b2
  | While (c, b) -> Fmt.pf fmt "while (%a) %a" e c pp_block b
  | Call (None, f, args) -> Fmt.pf fmt "%s(%a);" f pp_args args
  | Call (Some x, f, args) -> Fmt.pf fmt "%s = %s(%a);" x f pp_args args
  | Return None -> Fmt.pf fmt "return;"
  | Return (Some v) -> Fmt.pf fmt "return %a;" e v
  | Spawn (h, f, args) -> Fmt.pf fmt "spawn %s = %s(%a);" h f pp_args args
  | Join v -> Fmt.pf fmt "join %a;" e v
  | Sync (m, b) -> Fmt.pf fmt "sync (%a) %a" e m pp_block b
  | Lock m -> Fmt.pf fmt "lock %a;" e m
  | Unlock m -> Fmt.pf fmt "unlock %a;" e m
  | Wait m -> Fmt.pf fmt "wait %a;" e m
  | Notify m -> Fmt.pf fmt "notify %a;" e m
  | NotifyAll m -> Fmt.pf fmt "notifyall %a;" e m
  | Assert v -> Fmt.pf fmt "assert %a;" e v
  | Print v -> Fmt.pf fmt "print %a;" e v
  | Syscall (x, name, args) -> Fmt.pf fmt "%s = @%s(%a);" x name pp_args args
  | Opaque (x, name, args) -> Fmt.pf fmt "%s = #%s(%a);" x name pp_args args
  | Yield -> Fmt.pf fmt "yield;"
  | Nop -> Fmt.pf fmt "nop;"

and pp_block fmt (b : block) =
  Fmt.pf fmt "{@;<1 2>@[<v>%a@]@;}" Fmt.(list ~sep:cut pp_stmt) b

let pp_fn fmt (f : fndef) =
  Fmt.pf fmt "@[<v>fn %s(%s) %a@]" f.fname (String.concat ", " f.params) pp_block f.body

let pp_program fmt (p : program) =
  let pp_class fmt (name, fields) =
    Fmt.pf fmt "class %s { %s }" name
      (String.concat " " (List.map (fun f -> f ^ ";") fields))
  in
  let pp_global fmt g = Fmt.pf fmt "global %s;" g in
  Fmt.pf fmt "@[<v>%a@,%a@,%a@,main %a@]"
    Fmt.(list ~sep:cut pp_class) p.classes
    Fmt.(list ~sep:cut pp_global) p.globals
    Fmt.(list ~sep:cut pp_fn) p.fns
    pp_block p.main

let to_string (p : program) : string = Fmt.str "%a" pp_program p
let stmt_to_string (s : stmt) : string = Fmt.str "%a" pp_stmt s
let expr_to_string (e : expr) : string = Fmt.str "%a" (pp_expr ~prec:0) e
