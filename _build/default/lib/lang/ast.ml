(** Abstract syntax for the concurrent subject language.

    The language mirrors the execution model of Section 3.1 of the paper:
    threads, a thread-local environment, and a global heap of objects with
    named fields.  Statements are in "simple format" (at most one heap access
    per statement, cf. the paper's three-address-code assumption); the parser
    desugars nested heap reads into this form. *)

type binop =
  | Add | Sub | Mul | Div | Mod
  | Eq | Ne | Lt | Le | Gt | Ge
  | And | Or

type unop = Not | Neg

(** Pure expressions: no heap access.  Heap reads/writes only occur in
    dedicated statement forms, so that every statement performs at most one
    shared-memory access. *)
type expr =
  | Int of int
  | Bool of bool
  | Null
  | Str of string
  | Var of string
  | Binop of binop * expr * expr
  | Unop of unop * expr

(** Statements carry a unique site id [sid] (assigned by the parser) used by
    the static analyses and the instrumentation plan, plus the source line. *)
type stmt = { sid : int; line : int; node : stmt_node }

and stmt_node =
  | Assign of string * expr               (* x = e                  *)
  | Load of string * expr * string        (* x = e.f                *)
  | Store of expr * string * expr         (* e.f = e'               *)
  | LoadIdx of string * expr * expr       (* x = a[i]               *)
  | StoreIdx of expr * expr * expr        (* a[i] = e               *)
  | GlobalLoad of string * string         (* x = g                  *)
  | GlobalStore of string * expr          (* g = e                  *)
  | New of string * string                (* x = new C              *)
  | NewArray of string * expr             (* x = new[n]             *)
  | NewMap of string                      (* x = newmap             *)
  | MapGet of string * expr * expr        (* x = m{k}               *)
  | MapPut of expr * expr * expr          (* m{k} = v               *)
  | MapHas of string * expr * expr        (* x = maphas(m, k)       *)
  | If of expr * block * block
  | While of expr * block
  | Call of string option * string * expr list
  | Return of expr option
  | Spawn of string * string * expr list  (* spawn t = f(args)      *)
  | Join of expr                          (* join t                 *)
  | Sync of expr * block                  (* sync (m) { ... }       *)
  | Lock of expr
  | Unlock of expr
  | Wait of expr
  | Notify of expr
  | NotifyAll of expr
  | Assert of expr
  | Print of expr
  | Syscall of string * string * expr list (* x = @name(args): nondeterministic *)
  | Opaque of string * string * expr list  (* x = #name(args): deterministic but
                                              opaque to symbolic solvers *)
  | Yield
  | Nop

and block = stmt list

type fndef = { fname : string; params : string list; body : block }

type program = {
  classes : (string * string list) list;  (** class name, declared fields *)
  globals : string list;
  fns : fndef list;
  main : block;
}

let find_fn (p : program) (name : string) : fndef option =
  List.find_opt (fun f -> f.fname = name) p.fns

let class_fields (p : program) (cls : string) : string list option =
  List.assoc_opt cls p.classes

(** Fold over every statement in a program, entering nested blocks. *)
let fold_stmts (f : 'a -> stmt -> 'a) (init : 'a) (p : program) : 'a =
  let rec go acc (s : stmt) =
    let acc = f acc s in
    match s.node with
    | If (_, b1, b2) -> go_block (go_block acc b1) b2
    | While (_, b) | Sync (_, b) -> go_block acc b
    | _ -> acc
  and go_block acc b = List.fold_left go acc b in
  let acc = go_block init p.main in
  List.fold_left (fun acc fd -> go_block acc fd.body) acc p.fns

let iter_stmts (f : stmt -> unit) (p : program) : unit =
  fold_stmts (fun () s -> f s) () p

(** Iterate every statement in a block, entering nested blocks. *)
let iter_stmts_block (b : block) (f : stmt -> unit) : unit =
  let rec go (s : stmt) =
    f s;
    match s.node with
    | If (_, b1, b2) -> List.iter go b1; List.iter go b2
    | While (_, b) | Sync (_, b) -> List.iter go b
    | _ -> ()
  in
  List.iter go b

let max_sid (p : program) : int = fold_stmts (fun m s -> max m s.sid) 0 p

(** Variables read by a pure expression. *)
let rec expr_vars (e : expr) : string list =
  match e with
  | Int _ | Bool _ | Null | Str _ -> []
  | Var x -> [ x ]
  | Binop (_, a, b) -> expr_vars a @ expr_vars b
  | Unop (_, a) -> expr_vars a
