(** Hand-written lexer for the subject language. *)

type token =
  | INT of int
  | STRING of string
  | IDENT of string
  | KW of string       (* keywords *)
  | SYS of string      (* @name    *)
  | OP of string       (* #name    *)
  | LPAREN | RPAREN | LBRACE | RBRACE | LBRACKET | RBRACKET
  | LCURLYIDX | RCURLYIDX   (* map index braces: m{k} — disambiguated by parser *)
  | SEMI | COMMA | DOT | ASSIGN
  | PLUS | MINUS | STAR | SLASH | PERCENT
  | EQEQ | NEQ | LT | LE | GT | GE
  | ANDAND | OROR | BANG
  | EOF

type located = { tok : token; line : int }

exception Lex_error of string * int

let keywords =
  [ "class"; "global"; "fn"; "main"; "if"; "else"; "while"; "return";
    "spawn"; "join"; "sync"; "lock"; "unlock"; "wait"; "notify"; "notifyall";
    "assert"; "print"; "new"; "newmap"; "maphas"; "null"; "true"; "false";
    "yield"; "nop" ]

let is_ident_start c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_' || c = '$'
let is_ident_char c = is_ident_start c || (c >= '0' && c <= '9')
let is_digit c = c >= '0' && c <= '9'

let tokenize (src : string) : located list =
  let n = String.length src in
  let toks = ref [] in
  let line = ref 1 in
  let emit t = toks := { tok = t; line = !line } :: !toks in
  let i = ref 0 in
  let peek k = if !i + k < n then Some src.[!i + k] else None in
  while !i < n do
    let c = src.[!i] in
    if c = '\n' then (incr line; incr i)
    else if c = ' ' || c = '\t' || c = '\r' then incr i
    else if c = '/' && peek 1 = Some '/' then begin
      while !i < n && src.[!i] <> '\n' do incr i done
    end
    else if c = '/' && peek 1 = Some '*' then begin
      i := !i + 2;
      let closed = ref false in
      while not !closed && !i < n do
        if src.[!i] = '\n' then incr line;
        if src.[!i] = '*' && peek 1 = Some '/' then (closed := true; i := !i + 2)
        else incr i
      done;
      if not !closed then raise (Lex_error ("unterminated comment", !line))
    end
    else if is_digit c then begin
      let j = ref !i in
      while !j < n && is_digit src.[!j] do incr j done;
      emit (INT (int_of_string (String.sub src !i (!j - !i))));
      i := !j
    end
    else if is_ident_start c then begin
      let j = ref !i in
      while !j < n && is_ident_char src.[!j] do incr j done;
      let s = String.sub src !i (!j - !i) in
      emit (if List.mem s keywords then KW s else IDENT s);
      i := !j
    end
    else if c = '@' || c = '#' then begin
      let j = ref (!i + 1) in
      while !j < n && is_ident_char src.[!j] do incr j done;
      if !j = !i + 1 then raise (Lex_error (Printf.sprintf "expected name after '%c'" c, !line));
      let s = String.sub src (!i + 1) (!j - !i - 1) in
      emit (if c = '@' then SYS s else OP s);
      i := !j
    end
    else if c = '"' then begin
      let buf = Buffer.create 16 in
      let j = ref (!i + 1) in
      let closed = ref false in
      while not !closed && !j < n do
        match src.[!j] with
        | '"' -> closed := true; incr j
        | '\\' when !j + 1 < n ->
          let e = src.[!j + 1] in
          Buffer.add_char buf
            (match e with 'n' -> '\n' | 't' -> '\t' | c -> c);
          j := !j + 2
        | '\n' -> raise (Lex_error ("newline in string literal", !line))
        | ch -> Buffer.add_char buf ch; incr j
      done;
      if not !closed then raise (Lex_error ("unterminated string", !line));
      emit (STRING (Buffer.contents buf));
      i := !j
    end
    else begin
      let two t = emit t; i := !i + 2 in
      let one t = emit t; incr i in
      match c, peek 1 with
      | '=', Some '=' -> two EQEQ
      | '!', Some '=' -> two NEQ
      | '<', Some '=' -> two LE
      | '>', Some '=' -> two GE
      | '&', Some '&' -> two ANDAND
      | '|', Some '|' -> two OROR
      | '=', _ -> one ASSIGN
      | '!', _ -> one BANG
      | '<', _ -> one LT
      | '>', _ -> one GT
      | '+', _ -> one PLUS
      | '-', _ -> one MINUS
      | '*', _ -> one STAR
      | '/', _ -> one SLASH
      | '%', _ -> one PERCENT
      | '(', _ -> one LPAREN
      | ')', _ -> one RPAREN
      | '{', _ -> one LBRACE
      | '}', _ -> one RBRACE
      | '[', _ -> one LBRACKET
      | ']', _ -> one RBRACKET
      | ';', _ -> one SEMI
      | ',', _ -> one COMMA
      | '.', _ -> one DOT
      | _ -> raise (Lex_error (Printf.sprintf "unexpected character %C" c, !line))
    end
  done;
  emit EOF;
  List.rev !toks

let token_name = function
  | INT _ -> "integer" | STRING _ -> "string" | IDENT s -> Printf.sprintf "identifier %s" s
  | KW s -> Printf.sprintf "'%s'" s | SYS s -> "@" ^ s | OP s -> "#" ^ s
  | LPAREN -> "(" | RPAREN -> ")" | LBRACE -> "{" | RBRACE -> "}"
  | LBRACKET -> "[" | RBRACKET -> "]"
  | LCURLYIDX -> "{" | RCURLYIDX -> "}"
  | SEMI -> ";" | COMMA -> "," | DOT -> "." | ASSIGN -> "="
  | PLUS -> "+" | MINUS -> "-" | STAR -> "*" | SLASH -> "/" | PERCENT -> "%"
  | EQEQ -> "==" | NEQ -> "!=" | LT -> "<" | LE -> "<=" | GT -> ">" | GE -> ">="
  | ANDAND -> "&&" | OROR -> "||" | BANG -> "!"
  | EOF -> "end of input"
