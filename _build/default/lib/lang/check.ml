(** Static validation of programs: everything that can be rejected before
    running.  Dynamic properties (null dereference, lock discipline, arity of
    heap objects) are checked by the interpreter. *)

open Ast

type error = { line : int; msg : string }

let err line fmt = Printf.ksprintf (fun msg -> { line; msg }) fmt

let known_syscalls = [ "time"; "rand"; "read_input"; "nanotime" ]

let known_opaques =
  [ "hash"; "strlen"; "strcat"; "str_index"; "to_str"; "crc"; "mix"; "floor_sqrt" ]

let validate (p : program) : error list =
  let errors = ref [] in
  let add e = errors := e :: !errors in
  (* duplicate declarations *)
  let dup kind names =
    let seen = Hashtbl.create 8 in
    List.iter
      (fun n ->
        if Hashtbl.mem seen n then add (err 0 "duplicate %s declaration: %s" kind n)
        else Hashtbl.add seen n ())
      names
  in
  dup "class" (List.map fst p.classes);
  dup "global" p.globals;
  dup "function" (List.map (fun f -> f.fname) p.fns);
  List.iter (fun (c, fields) -> dup (Printf.sprintf "field in class %s" c) fields) p.classes;
  (* per-statement checks *)
  let check_stmt (s : stmt) =
    match s.node with
    | New (_, cls) ->
      if class_fields p cls = None then add (err s.line "unknown class %s" cls)
    | Call (_, f, args) | Spawn (_, f, args) -> (
      match find_fn p f with
      | None -> add (err s.line "call to undefined function %s" f)
      | Some fd ->
        if List.length fd.params <> List.length args then
          add
            (err s.line "function %s expects %d argument(s), got %d" f
               (List.length fd.params) (List.length args)))
    | Syscall (_, name, _) ->
      if not (List.mem name known_syscalls) then
        add (err s.line "unknown system call @%s" name)
    | Opaque (_, name, _) ->
      (* names starting with "__" are woven instrumentation pseudo-hooks *)
      if
        (not (List.mem name known_opaques))
        && not (String.length name >= 2 && String.sub name 0 2 = "__")
      then add (err s.line "unknown opaque operation #%s" name)
    | GlobalLoad (_, g) | GlobalStore (g, _) ->
      if not (List.mem g p.globals) then add (err s.line "undeclared global %s" g)
    | _ -> ()
  in
  iter_stmts check_stmt p;
  (* return outside of a function body is meaningless in main *)
  let rec check_main_block b =
    List.iter
      (fun s ->
        match s.node with
        | Return _ -> add (err s.line "return statement in main block")
        | If (_, b1, b2) -> check_main_block b1; check_main_block b2
        | While (_, b) | Sync (_, b) -> check_main_block b
        | _ -> ())
      b
  in
  check_main_block p.main;
  (* locals shadowing globals would make name resolution ambiguous *)
  List.iter
    (fun fd ->
      List.iter
        (fun prm ->
          if List.mem prm p.globals then
            add (err 0 "parameter %s of %s shadows a global" prm fd.fname))
        fd.params)
    p.fns;
  List.rev !errors

exception Invalid of error list

(** [validate_exn p] raises {!Invalid} when [p] has static errors. *)
let validate_exn (p : program) : program =
  match validate p with [] -> p | errs -> raise (Invalid errs)

let error_to_string (e : error) : string =
  if e.line > 0 then Printf.sprintf "line %d: %s" e.line e.msg else e.msg
