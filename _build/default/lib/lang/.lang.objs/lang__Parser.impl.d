lib/lang/parser.ml: Ast Fun Lexer List Printf String
