lib/lang/pp.ml: Ast Fmt List String
