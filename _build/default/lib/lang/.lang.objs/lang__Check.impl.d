lib/lang/check.ml: Ast Hashtbl List Printf String
