(** The 24-benchmark suite of Section 5 (3 JGF, 8 STAMP-port, 7 server-side
    and crawling applications, 6 DaCapo), as synthetic workload generators.

    The figures of Section 5.2/5.4 are driven entirely by each benchmark's
    {e sharing signature} — how many accesses touch shared data, how long
    the uninterleaved same-thread runs are, what fraction is consistently
    lock-protected, and how contended the hot locations are.  Each named
    benchmark instantiates the generator with the signature of its real
    counterpart:

    - scientific kernels (JGF, most of STAMP) partition arrays across
      threads and synchronize rarely: low access density, long runs;
    - server workloads mix lock-disciplined session state with unguarded
      hot counters and hash-map tables;
    - DaCapo's concurrency-heavy members (avrora, xalan) hammer small hot
      objects from all threads — the regime where synchronized per-access
      recording collapses (the paper's up-to-17.85X Leap cases). *)

type params = {
  threads : int;
  iters : int;          (** outer iterations per worker *)
  local_work : int;     (** pure-local ops per iteration *)
  array_size : int;
  runlen : int;         (** consecutive array accesses per burst *)
  partition : bool;     (** threads work on disjoint slices *)
  array_reads : int;    (** array-burst reads per iteration *)
  array_writes : int;
  hot_ops : int;        (** unguarded read-modify-writes of one hot object *)
  locked_ops : int;     (** ops inside a consistent sync region *)
  use_maps : bool;
  use_syscalls : bool;
  stickiness : int;     (** scheduler run-length: interleaving realism knob *)
}

type benchmark = {
  name : string;
  suite : string;  (** "JGF" | "STAMP" | "Server" | "DaCapo" *)
  params : params;
}

(* ------------------------------------------------------------------ *)
(* Program generation                                                   *)
(* ------------------------------------------------------------------ *)

let generate ?(scale = 1) (p : params) : string =
  let b = Buffer.create 4096 in
  let add fmt = Printf.ksprintf (fun s -> Buffer.add_string b s; Buffer.add_char b '\n') fmt in
  let iters = p.iters * scale in
  add "class Acc { n; v; }";
  add "global data;";
  add "global acc;";
  add "global lk;";
  if p.use_maps then add "global tbl;";
  add "";
  add "fn worker(id) {";
  add "  lx = id * 17 + 3;";
  (* cache stable references in locals, as compiled Java would *)
  add "  d = data;";
  add "  a = acc;";
  add "  l = lk;";
  if p.use_maps then add "  tb = tbl;";
  add "  i = 0;";
  add "  while (i < %d) {" iters;
  (* pure local computation: no heap access at all *)
  if p.local_work > 0 then begin
    add "    w = 0;";
    add "    while (w < %d) { lx = (lx * 5 + w) %% 65536; w = w + 1; }" p.local_work
  end;
  (* array bursts *)
  if p.array_reads > 0 || p.array_writes > 0 then begin
    if p.partition then
      add "    base = (id * %d + ((i * %d) %% %d)) %% %d;"
        (p.array_size / max 1 p.threads)
        p.runlen
        (max 1 (p.array_size / max 1 p.threads))
        p.array_size
    else add "    base = (lx + i) %% %d;" p.array_size;
    (* bursts are emitted straight-line: a compiled loop body touching the
       heap once per iteration has little control overhead per access *)
    for j = 0 to p.array_reads - 1 do
      add "    v%d = d[(base + %d) %% %d];" j (j mod p.runlen) p.array_size
    done;
    if p.array_reads > 0 then begin
      add "    lx = (lx + %s) %% 65536;"
        (String.concat " + " (List.init p.array_reads (Printf.sprintf "v%d")))
    end;
    for j = 0 to p.array_writes - 1 do
      add "    d[(base + %d) %% %d] = lx + %d;" (j mod p.runlen) p.array_size j
    done
  end;
  (* unguarded hot object *)
  for _ = 1 to p.hot_ops do
    add "    a.n = a.n + 1;"
  done;
  (* consistently locked section *)
  if p.locked_ops > 0 then begin
    add "    sync (l) {";
    for _ = 1 to p.locked_ops do
      add "      l.v = l.v + 1;"
    done;
    add "    }"
  end;
  if p.use_maps then begin
    add "    tb{id %% 4} = lx;";
    add "    mv = tb{(id + 1) %% 4};";
    add "    if (mv != null) { lx = (lx + mv) %% 65536; }"
  end;
  if p.use_syscalls then add "    ts = @time();";
  add "    i = i + 1;";
  add "  }";
  add "  return lx;";
  add "}";
  add "";
  add "main {";
  add "  data = new[%d];" p.array_size;
  add "  acc = new Acc;";
  add "  acc.n = 0;";
  add "  lk = new Acc;";
  add "  sync (lk) { lk.v = 0; }";
  if p.use_maps then add "  tbl = newmap;";
  for t = 1 to p.threads do
    add "  spawn t%d = worker(%d);" t t
  done;
  for t = 1 to p.threads do
    add "  join t%d;" t
  done;
  add "  print acc.n;";
  add "}";
  Buffer.contents b

let program ?scale (bm : benchmark) : Lang.Ast.program =
  Lang.Check.validate_exn (Lang.Parser.parse_program (generate ?scale bm.params))

let scheduler ?(seed = 7) (bm : benchmark) : Runtime.Sched.t =
  Runtime.Sched.sticky ~seed ~stickiness:bm.params.stickiness

(* ------------------------------------------------------------------ *)
(* The 24 benchmarks                                                    *)
(* ------------------------------------------------------------------ *)

let base : params =
  {
    threads = 8;
    iters = 48;
    local_work = 6;
    array_size = 256;
    runlen = 8;
    partition = true;
    array_reads = 8;
    array_writes = 4;
    hot_ops = 0;
    locked_ops = 0;
    use_maps = false;
    use_syscalls = false;
    stickiness = 240;
  }

let jgf =
  [
    (* embarrassingly parallel series evaluation: almost no sharing *)
    { name = "jgf-series"; suite = "JGF";
      params = { base with local_work = 26; array_reads = 2; array_writes = 2; runlen = 16; stickiness = 2000 } };
    (* crypt: partitioned array transform with a shared key block *)
    { name = "jgf-crypt"; suite = "JGF";
      params = { base with local_work = 12; array_reads = 12; array_writes = 8; runlen = 12; hot_ops = 1 } };
    (* sparse mat-mult: partitioned rows + shared accumulator *)
    { name = "jgf-sparse"; suite = "JGF";
      params = { base with local_work = 8; array_reads = 16; array_writes = 2; runlen = 10; hot_ops = 2 } };
  ]

let stamp =
  [
    { name = "stamp-bayes"; suite = "STAMP";
      params = { base with local_work = 10; locked_ops = 4; array_reads = 10; hot_ops = 1; stickiness = 700 } };
    { name = "stamp-genome"; suite = "STAMP";
      params = { base with local_work = 7; use_maps = true; locked_ops = 3; runlen = 8 } };
    { name = "stamp-intruder"; suite = "STAMP";
      params = { base with local_work = 3; partition = false; array_size = 64; runlen = 2; array_reads = 9; array_writes = 6; hot_ops = 3; stickiness = 120 } };
    { name = "stamp-kmeans"; suite = "STAMP";
      params = { base with local_work = 14; array_reads = 12; array_writes = 3; hot_ops = 2; runlen = 12 } };
    { name = "stamp-labyrinth"; suite = "STAMP";
      params = { base with local_work = 18; array_reads = 14; array_writes = 10; runlen = 14; stickiness = 1500 } };
    { name = "stamp-ssca2"; suite = "STAMP";
      params = { base with local_work = 9; partition = false; array_size = 64; array_reads = 8; array_writes = 5; runlen = 2; stickiness = 320 } };
    { name = "stamp-vacation"; suite = "STAMP";
      params = { base with local_work = 6; use_maps = true; locked_ops = 10; array_reads = 5; array_writes = 2; hot_ops = 1; stickiness = 90 } };
    { name = "stamp-yada"; suite = "STAMP";
      params = { base with local_work = 5; partition = false; array_size = 64; runlen = 2; array_reads = 10; array_writes = 6; hot_ops = 2; stickiness = 150 } };
  ]

let servers =
  [
    { name = "cache4j"; suite = "Server";
      params = { base with local_work = 4; locked_ops = 5; hot_ops = 3; use_syscalls = true; array_reads = 4; array_writes = 2; partition = false; stickiness = 330 } };
    { name = "ftpserver"; suite = "Server";
      params = { base with local_work = 5; use_maps = true; locked_ops = 9; array_reads = 2; array_writes = 1; use_syscalls = true; stickiness = 110 } };
    { name = "weblech"; suite = "Server";
      params = { base with local_work = 6; use_maps = true; locked_ops = 2; hot_ops = 2; partition = false; array_size = 64; runlen = 2; stickiness = 170 } };
    { name = "hedc"; suite = "Server";
      params = { base with local_work = 8; use_maps = true; locked_ops = 3; array_reads = 5; stickiness = 750 } };
    { name = "tomcat-kernel"; suite = "Server";
      params = { base with local_work = 3; locked_ops = 14; hot_ops = 3; use_maps = true; partition = false; array_size = 64; runlen = 2; array_reads = 4; array_writes = 2; stickiness = 44 } };
    { name = "jigsaw"; suite = "Server";
      params = { base with local_work = 5; locked_ops = 9; hot_ops = 1; array_reads = 4; stickiness = 90 } };
    { name = "openjms"; suite = "Server";
      params = { base with local_work = 4; locked_ops = 12; array_reads = 4; array_writes = 1; use_maps = true; hot_ops = 1; stickiness = 80 } };
  ]

let dacapo =
  [
    (* avrora: cycle-accurate AVR simulation, tiny hot monitor state *)
    { name = "dacapo-avrora"; suite = "DaCapo";
      params = { base with local_work = 1; partition = false; array_size = 16; array_reads = 7; array_writes = 5; runlen = 2; hot_ops = 6; stickiness = 16 } };
    { name = "dacapo-h2"; suite = "DaCapo";
      params = { base with local_work = 4; locked_ops = 16; array_reads = 4; array_writes = 2; use_maps = true; hot_ops = 1; stickiness = 60 } };
    { name = "dacapo-lusearch"; suite = "DaCapo";
      params = { base with local_work = 10; array_reads = 14; array_writes = 1; runlen = 12; hot_ops = 1; stickiness = 1100 } };
    { name = "dacapo-luindex"; suite = "DaCapo";
      params = { base with local_work = 9; array_reads = 8; array_writes = 6; runlen = 10; locked_ops = 2; stickiness = 1000 } };
    { name = "dacapo-sunflow"; suite = "DaCapo";
      params = { base with local_work = 22; array_reads = 10; array_writes = 2; runlen = 16; stickiness = 1800 } };
    (* xalan: shared DTM tables pounded by all workers *)
    { name = "dacapo-xalan"; suite = "DaCapo";
      params = { base with local_work = 1; partition = false; array_size = 24; array_reads = 8; array_writes = 6; runlen = 2; hot_ops = 5; stickiness = 20 } };
  ]

let all : benchmark list = jgf @ stamp @ servers @ dacapo

let by_name (n : string) : benchmark option =
  List.find_opt (fun b -> String.lowercase_ascii b.name = String.lowercase_ascii n) all
