(** DPLL(T) solver for Integer Difference Logic.

    This is the offline scheduling engine of the paper (Section 4.2): the
    replay constraint system is a conjunction of difference atoms
    [O(a) < O(b)] plus binary disjunctions of such atoms (noninterference).
    Z3 discharges it via its IDL theory; we implement the same decision
    procedure — boolean search over the disjunctions with an incremental
    negative-cycle theory solver ({!Diff_graph}) checking each candidate.

    The search is chronological DPLL: clauses are processed in order and the
    first theory-consistent literal of each is asserted; conflicts backtrack
    to the most recent clause with an untried literal.  Clause order and
    literal order are therefore the caller's heuristic handles; the
    constraint generator orders literals by the recorded observation so the
    original schedule acts as an implicit witness and backtracking is rare. *)

type atom = { u : int; v : int; k : int }  (** x_u - x_v <= k *)

(** [lt a b] encodes the strict order [x_a < x_b] over integers. *)
let lt a b : atom = { u = a; v = b; k = -1 }

(** [le a b] encodes [x_a <= x_b]. *)
let le a b : atom = { u = a; v = b; k = 0 }

type problem = {
  nvars : int;
  hard : atom list;            (** asserted unconditionally *)
  clauses : atom array array;  (** each must have >= 1 satisfied atom *)
}

type stats = {
  decisions : int;
  backtracks : int;
  theory_conflicts : int;
  final_edges : int;
}

type result =
  | Sat of int array * stats   (** a satisfying assignment of the x variables *)
  | Unsat of stats
  | Aborted of stats           (** backtrack budget exhausted *)


exception Give_up
exception Unsat_now

let solve ?(max_backtracks = 2_000_000) (p : problem) : result =
  let g = Diff_graph.create (max 1 p.nvars) in
  let decisions = ref 0 and backtracks = ref 0 and conflicts = ref 0 in
  let stats () =
    {
      decisions = !decisions;
      backtracks = !backtracks;
      theory_conflicts = !conflicts;
      final_edges = Diff_graph.num_edges g;
    }
  in
  let hard_ok =
    List.for_all
      (fun (a : atom) ->
        match Diff_graph.add_constraint g ~u:a.u ~v:a.v ~k:a.k ~tag:(-1) with
        | Ok () -> true
        | Error _ -> incr conflicts; false)
      p.hard
  in
  if not hard_ok then Unsat (stats ())
  else begin
    let clauses = p.clauses in
    let n = Array.length clauses in
    (* decision stack: (clause index, literal index chosen) *)
    let stack = ref [] in
    let model () =
      let m = Array.init p.nvars (fun i -> Diff_graph.potential g i) in
      Sat (m, stats ())
    in
    try
       let i = ref 0 in
       while !i < n do
         let clause = clauses.(!i) in
         (* find the first literal, starting at [start], that is consistent *)
         let rec try_from j =
           if j >= Array.length clause then None
           else begin
             let a = clause.(j) in
             Diff_graph.push g;
             match Diff_graph.add_constraint g ~u:a.u ~v:a.v ~k:a.k ~tag:!i with
             | Ok () -> Some j
             | Error _ ->
               incr conflicts;
               Diff_graph.pop g;
               try_from (j + 1)
           end
         in
         (match try_from 0 with
         | Some j ->
           incr decisions;
           stack := (!i, j) :: !stack;
           incr i
         | None ->
           (* conflict: backtrack to the last decision with untried literals *)
           let rec unwind () =
             match !stack with
             | [] -> raise Unsat_now
             | (ci, cj) :: rest ->
               stack := rest;
               Diff_graph.pop g;
               incr backtracks;
               if !backtracks > max_backtracks then raise Give_up;
               let rec retry j =
                 if j >= Array.length clauses.(ci) then unwind ()
                 else begin
                   let a = clauses.(ci).(j) in
                   Diff_graph.push g;
                   match Diff_graph.add_constraint g ~u:a.u ~v:a.v ~k:a.k ~tag:ci with
                   | Ok () ->
                     incr decisions;
                     stack := (ci, j) :: !stack;
                     i := ci + 1
                   | Error _ ->
                     incr conflicts;
                     Diff_graph.pop g;
                     retry (j + 1)
                 end
               in
               retry (cj + 1)
           in
           unwind ())
       done;
       model ()
    with
    | Unsat_now -> Unsat (stats ())
    | Give_up -> Aborted (stats ())
  end
