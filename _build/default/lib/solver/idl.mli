(** DPLL(T) solver for Integer Difference Logic — the offline scheduling
    engine of Section 4.2 of the paper.

    The replay constraint system is a conjunction of strict-order atoms
    [O(a) < O(b)] plus disjunctions of such atoms (the noninterference
    clauses of Equation 1).  This is exactly the IDL fragment Z3 solves for
    the paper's prototype; here the decision procedure is implemented
    directly: chronological DPLL over the clauses with an incremental
    negative-cycle theory solver ({!Diff_graph}) validating each candidate
    assignment.

    Clause order and literal order are the caller's heuristic handles: the
    search asserts the first theory-consistent literal of each clause in
    order and backtracks chronologically, so callers that order literals by
    a known witness (the recorded observation order) solve with little or
    no backtracking. *)

type atom = { u : int; v : int; k : int }
(** The difference constraint [x_u - x_v <= k]. *)

val lt : int -> int -> atom
(** [lt a b] is the strict order [x_a < x_b] over the integers. *)

val le : int -> int -> atom
(** [le a b] is [x_a <= x_b]. *)

type problem = {
  nvars : int;                 (** variables are [0 .. nvars-1] *)
  hard : atom list;            (** asserted unconditionally *)
  clauses : atom array array;  (** each clause needs >= 1 satisfied atom *)
}

type stats = {
  decisions : int;
  backtracks : int;
  theory_conflicts : int;
  final_edges : int;
}

type result =
  | Sat of int array * stats
      (** a satisfying assignment: [m.(i)] is the value of [x_i]; every hard
          atom holds and every clause has a satisfied member *)
  | Unsat of stats
  | Aborted of stats  (** the backtrack budget was exhausted *)

exception Give_up
exception Unsat_now
(** Internal control flow; never escape {!solve}. *)

val solve : ?max_backtracks:int -> problem -> result
(** Solve the problem.  [max_backtracks] (default 2,000,000) bounds the
    chronological backtracking before giving up with {!Aborted}. *)
