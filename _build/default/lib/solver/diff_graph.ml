(** Incremental difference-constraint graph.

    A constraint [x_u - x_v <= k] is an edge [v -> u] with weight [k].  The
    conjunction of constraints is satisfiable iff the graph has no negative
    cycle.  We maintain a potential [d] with [d(u) <= d(v) + k] for every
    edge — which is itself a satisfying assignment — and detect infeasibility
    incrementally: adding an edge triggers queue-based relaxation, and a
    negative cycle exists iff the relaxation wave improves the new edge's
    source (the cycle necessarily passes through the new edge, because the
    graph was feasible before).

    Supports chronological backtracking via [push]/[pop] (trail of edge
    additions and potential updates), and tags every edge so that negative
    cycles can be reported as sets of responsible constraint tags (used by
    the DPLL(T) driver for conflict analysis). *)

type edge = { target : int; weight : int; tag : int }

type t = {
  mutable nvars : int;
  mutable out : edge list array;  (* out.(v) = edges v->u *)
  mutable d : int array;          (* potential: d(u) <= d(v) + k *)
  mutable parent : (int * int) array;  (* relaxation parents: node, tag *)
  (* trails *)
  mutable edge_trail : int list;       (* sources whose out list grew *)
  mutable d_trail : (int * int) list;  (* node, previous potential *)
  mutable levels : (int * int) list;   (* saved trail lengths *)
  mutable edge_trail_len : int;
  mutable d_trail_len : int;
  mutable nedges : int;
}

let create (nvars : int) : t =
  {
    nvars;
    out = Array.make (max 1 nvars) [];
    d = Array.make (max 1 nvars) 0;
    parent = Array.make (max 1 nvars) (-1, -1);
    edge_trail = [];
    d_trail = [];
    levels = [];
    edge_trail_len = 0;
    d_trail_len = 0;
    nedges = 0;
  }

let ensure (g : t) (n : int) : unit =
  if n >= g.nvars then begin
    let cap = max (n + 1) (2 * g.nvars) in
    let grow a fill =
      let b = Array.make cap fill in
      Array.blit a 0 b 0 (Array.length a);
      b
    in
    g.out <- grow g.out [];
    g.d <- grow g.d 0;
    g.parent <- grow g.parent (-1, -1);
    g.nvars <- cap
  end

let potential (g : t) (v : int) : int = g.d.(v)
let num_edges (g : t) : int = g.nedges

let push (g : t) : unit = g.levels <- (g.edge_trail_len, g.d_trail_len) :: g.levels

let pop (g : t) : unit =
  match g.levels with
  | [] -> invalid_arg "Diff_graph.pop: no saved level"
  | (el, dl) :: rest ->
    g.levels <- rest;
    while g.edge_trail_len > el do
      (match g.edge_trail with
      | v :: tl ->
        g.edge_trail <- tl;
        g.out.(v) <- List.tl g.out.(v);
        g.nedges <- g.nedges - 1
      | [] -> assert false);
      g.edge_trail_len <- g.edge_trail_len - 1
    done;
    while g.d_trail_len > dl do
      (match g.d_trail with
      | (v, old) :: tl ->
        g.d_trail <- tl;
        g.d.(v) <- old
      | [] -> assert false);
      g.d_trail_len <- g.d_trail_len - 1
    done

let set_d (g : t) (v : int) (x : int) : unit =
  g.d_trail <- (v, g.d.(v)) :: g.d_trail;
  g.d_trail_len <- g.d_trail_len + 1;
  g.d.(v) <- x

(** [add_constraint g ~u ~v ~k ~tag] asserts [x_u - x_v <= k].
    Returns [Ok ()] and updates the potential, or [Error tags] where [tags]
    are edge tags involved in a negative cycle (including [tag]).  On error
    the graph state is inconsistent; the caller must [pop] back to the
    enclosing level (which undoes the failed addition). *)
let add_constraint (g : t) ~(u : int) ~(v : int) ~(k : int) ~(tag : int) :
    (unit, int list) result =
  ensure g (max u v);
  (* record the edge v -> u *)
  g.out.(v) <- { target = u; weight = k; tag } :: g.out.(v);
  g.edge_trail <- v :: g.edge_trail;
  g.edge_trail_len <- g.edge_trail_len + 1;
  g.nedges <- g.nedges + 1;
  if g.d.(u) <= g.d.(v) + k then Ok ()
  else begin
    (* relax from u; improving d(v) certifies a negative cycle *)
    g.parent.(u) <- (v, tag);
    set_d g u (g.d.(v) + k);
    let q = Queue.create () in
    Queue.add u q;
    let conflict = ref None in
    while !conflict = None && not (Queue.is_empty q) do
      let x = Queue.take q in
      let dx = g.d.(x) in
      List.iter
        (fun (e : edge) ->
          if !conflict = None && g.d.(e.target) > dx + e.weight then begin
            if e.target = v then begin
              (* negative cycle: new edge + path u .. x + edge x->v.
                 Parent pointers may be stale after repeated relaxations, so
                 the walk is bounded; the tag set is advisory (used for
                 conflict reporting, not learning). *)
              let tags = ref [ tag; e.tag ] in
              let cur = ref x in
              let fuel = ref (g.nvars + 1) in
              while !cur <> u && !fuel > 0 do
                decr fuel;
                let p, ptag = g.parent.(!cur) in
                tags := ptag :: !tags;
                cur := p
              done;
              conflict := Some !tags
            end
            else begin
              g.parent.(e.target) <- (x, e.tag);
              set_d g e.target (dx + e.weight);
              Queue.add e.target q
            end
          end)
        g.out.(x)
    done;
    match !conflict with None -> Ok () | Some tags -> Error tags
  end
