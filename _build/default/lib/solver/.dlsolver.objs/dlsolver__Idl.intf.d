lib/solver/idl.mli:
