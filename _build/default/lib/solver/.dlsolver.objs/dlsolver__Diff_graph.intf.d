lib/solver/diff_graph.mli:
