lib/solver/idl.ml: Array Diff_graph List
