lib/solver/diff_graph.ml: Array List Queue
