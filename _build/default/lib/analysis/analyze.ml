(** Whole-program analysis results consumed by the instrumentation pass, by
    optimization O2 (Lemma 4.2) and by the Chimera baseline.

    - {b shared targets}: data reachable from at least two dynamic thread
      contexts (conservative; the role Soot/Chord play in the paper).
    - {b guarded targets}: shared data whose every access site runs under a
      consistent lock, so access-level recording can be subsumed by the
      lock's ghost dependences.
    - {b race pairs}: pairs of sites on the same shared target, at least one
      a write, with no common lock — the input to Chimera's patching. *)

open Lang

module TM = Map.Make (struct
  type t = Sites.target
  let compare = Sites.target_compare
end)

type target_class = {
  target : Sites.target;
  shared : bool;
  guarded_by : string option;  (** common lock (a global name) if consistent *)
  sites : Sites.info list;
}

type race_pair = {
  t1 : Sites.info;
  t2 : Sites.info;
  on : Sites.target;
}

type t = {
  program : Ast.program;
  callgraph : Callgraph.t;
  sites : Sites.info list;
  targets : target_class TM.t;
  races : race_pair list;
}

let intersect_locks (sites : Sites.info list) : string option =
  (* init-phase accesses are happens-before-ordered with every thread and do
     not break lock consistency (safe publication) *)
  let sites = List.filter (fun (s : Sites.info) -> not s.init_phase) sites in
  match sites with
  | [] -> None
  | first :: rest ->
    if first.unresolved_lock || List.exists (fun (s : Sites.info) -> s.unresolved_lock) rest
    then None
    else
      let common =
        List.fold_left
          (fun acc (s : Sites.info) -> List.filter (fun l -> List.mem l s.locks) acc)
          first.locks rest
      in
      (match common with l :: _ -> Some l | [] -> None)

let analyze (p : Ast.program) : t =
  let cg = Callgraph.build p in
  let sites = Sites.collect p in
  (* group the non-fresh sites by target *)
  let groups =
    List.fold_left
      (fun m (s : Sites.info) ->
        if s.base_fresh then m
        else
          let prev = Option.value ~default:[] (TM.find_opt s.target m) in
          TM.add s.target (s :: prev) m)
      TM.empty sites
  in
  let targets =
    TM.mapi
      (fun target group ->
        let group = List.rev group in
        (* dynamic thread contexts that can reach any accessing site *)
        let entries =
          List.sort_uniq compare
            (List.concat_map (fun (s : Sites.info) -> Callgraph.entries_reaching cg s.fn) group)
        in
        let contexts =
          List.fold_left (fun acc e -> acc + Callgraph.multiplicity cg e) 0 entries
        in
        let shared = contexts >= 2 in
        let guarded_by = if shared then intersect_locks group else None in
        { target; shared; guarded_by; sites = group })
      groups
  in
  (* race pairs: same shared unguarded target, >= 1 write, no common lock *)
  let races =
    TM.fold
      (fun target (tc : target_class) acc ->
        if (not tc.shared) || tc.guarded_by <> None then acc
        else
          let rec pairs = function
            | [] -> []
            | (x : Sites.info) :: rest when x.init_phase -> pairs rest
            | (x : Sites.info) :: rest ->
              List.filter_map
                (fun (y : Sites.info) ->
                  if y.init_phase then None
                  else
                  let writes = x.kind = Sites.KWrite || y.kind = Sites.KWrite in
                  let no_common_lock =
                    x.unresolved_lock || y.unresolved_lock
                    || not (List.exists (fun l -> List.mem l y.locks) x.locks)
                  in
                  if writes && no_common_lock then Some { t1 = x; t2 = y; on = target }
                  else None)
                rest
              @ pairs rest
          in
          pairs tc.sites @ acc)
      targets []
  in
  { program = p; callgraph = cg; sites; targets; races }

(* ------------------------------------------------------------------ *)
(* Queries                                                             *)
(* ------------------------------------------------------------------ *)

let target_of_site (a : t) (sid : int) : Sites.info option =
  List.find_opt (fun (s : Sites.info) -> s.sid = sid) a.sites

let shared_sids (a : t) : (int, bool) Hashtbl.t =
  let h = Hashtbl.create 64 in
  List.iter
    (fun (s : Sites.info) ->
      let shared =
        (not s.base_fresh)
        &&
        match TM.find_opt s.target a.targets with
        | Some tc -> tc.shared
        | None -> false
      in
      Hashtbl.replace h s.sid shared)
    a.sites;
  h

let guarded_sids (a : t) : (int, bool) Hashtbl.t =
  let h = Hashtbl.create 64 in
  List.iter
    (fun (s : Sites.info) ->
      let guarded =
        (not s.base_fresh)
        &&
        match TM.find_opt s.target a.targets with
        | Some tc -> tc.shared && tc.guarded_by <> None
        | None -> false
      in
      Hashtbl.replace h s.sid guarded)
    a.sites;
  h

(** Summary line for CLI / debugging. *)
let summary (a : t) : string =
  let total = TM.cardinal a.targets in
  let shared = TM.fold (fun _ tc n -> if tc.shared then n + 1 else n) a.targets 0 in
  let guarded =
    TM.fold (fun _ tc n -> if tc.guarded_by <> None then n + 1 else n) a.targets 0
  in
  Printf.sprintf "%d targets (%d shared, %d lock-guarded), %d sites, %d race pairs" total
    shared guarded (List.length a.sites) (List.length a.races)
