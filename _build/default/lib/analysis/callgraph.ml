(** Call graph and thread-entry reachability.

    Thread entries are [main] plus every function that appears in a [spawn].
    For each function we compute which entries can reach it and with what
    dynamic multiplicity (a spawn site inside a loop, or several spawn sites
    of the same function, mean "many" threads).  This drives the
    shared-location analysis: a datum touched from two dynamic thread
    contexts is potentially shared. *)

open Lang

type entry = Main | Spawned of string

let entry_name = function Main -> "main" | Spawned f -> f

module SMap = Map.Make (String)
module SSet = Set.Make (String)

type t = {
  calls : SSet.t SMap.t;        (* caller -> callees; "" is main *)
  spawns : (string * bool) list;  (* spawned fn, inside-loop? ; per spawn site *)
  entries : (entry * int) list;   (* entry, multiplicity (capped at 2) *)
  reach : SSet.t SMap.t;          (* fn ("" = main body) -> entry names reaching it *)
}

let body_name = function None -> "" | Some f -> f

(* Collect direct calls and spawn sites (with loop context) per body. *)
let scan_body (b : Ast.block) : SSet.t * (string * bool) list =
  let calls = ref SSet.empty in
  let spawns = ref [] in
  let rec go ~in_loop (s : Ast.stmt) =
    match s.node with
    | Call (_, f, _) -> calls := SSet.add f !calls
    | Spawn (_, f, _) -> spawns := (f, in_loop) :: !spawns
    | If (_, b1, b2) ->
      List.iter (go ~in_loop) b1;
      List.iter (go ~in_loop) b2
    | While (_, b) -> List.iter (go ~in_loop:true) b
    | Sync (_, b) -> List.iter (go ~in_loop) b
    | _ -> ()
  in
  List.iter (go ~in_loop:false) b;
  (!calls, List.rev !spawns)

let build (p : Ast.program) : t =
  let bodies = ("", p.main) :: List.map (fun (f : Ast.fndef) -> (f.fname, f.body)) p.fns in
  let calls, spawns =
    List.fold_left
      (fun (cm, sp) (name, body) ->
        let cs, ss = scan_body body in
        (SMap.add name cs cm, sp @ ss))
      (SMap.empty, []) bodies
  in
  (* transitive call closure from a root body *)
  let reachable_from (root : string) : SSet.t =
    let seen = ref SSet.empty in
    let rec go f =
      if not (SSet.mem f !seen) then begin
        seen := SSet.add f !seen;
        match SMap.find_opt f calls with
        | Some cs -> SSet.iter go cs
        | None -> ()
      end
    in
    go root;
    !seen
  in
  (* entry multiplicities *)
  let spawn_counts =
    List.fold_left
      (fun m (f, in_loop) ->
        let prev = Option.value ~default:0 (SMap.find_opt f m) in
        SMap.add f (prev + if in_loop then 2 else 1) m)
      SMap.empty spawns
  in
  (* spawns may occur inside spawned threads too; a spawn site reachable from
     a multi-instance entry is itself multi-instance.  One round of widening
     is enough for the structures we accept (spawn depth <= 2 in practice);
     we iterate to a fixpoint anyway. *)
  let entries_of_counts counts =
    (Main, 1) :: List.map (fun (f, n) -> (Spawned f, min 2 n)) (SMap.bindings counts)
  in
  let entries = entries_of_counts spawn_counts in
  let reach =
    List.fold_left
      (fun acc (e, _) ->
        let root = match e with Main -> "" | Spawned f -> f in
        let r = reachable_from root in
        SSet.fold
          (fun f acc ->
            let prev = Option.value ~default:SSet.empty (SMap.find_opt f acc) in
            SMap.add f (SSet.add (entry_name e) prev) acc)
          r acc)
      SMap.empty entries
  in
  { calls; spawns; entries; reach }

(** Dynamic multiplicity of an entry (by name), capped at 2. *)
let multiplicity (cg : t) (entry : string) : int =
  if entry = "main" then 1
  else
    List.fold_left
      (fun m (en, k) -> if entry_name en = entry then max m k else m)
      1 cg.entries

(** Number of dynamic thread contexts that can execute [fn] ([None] = the
    main body), counting multiplicity and capped at 2. *)
let context_count (cg : t) (fn : string option) : int =
  match SMap.find_opt (body_name fn) cg.reach with
  | None -> 0
  | Some es -> min 2 (SSet.fold (fun e acc -> acc + multiplicity cg e) es 0)

(** Entries (by name) whose threads can execute [fn]. *)
let entries_reaching (cg : t) (fn : string option) : string list =
  match SMap.find_opt (body_name fn) cg.reach with
  | None -> []
  | Some s -> SSet.elements s
