lib/analysis/callgraph.ml: Ast Lang List Map Option Set String
