lib/analysis/sites.ml: Ast Hashtbl Lang List Option Set String
