lib/analysis/analyze.ml: Ast Callgraph Hashtbl Lang List Map Option Printf Sites
