(** Instrumentation plan consumed by the interpreter.

    The transformer (lib/instrument) decides, per static site, whether the
    access may touch a shared location (and must therefore be instrumented:
    counter tick + tool hooks) and whether it is consistently lock-guarded
    (optimization O2, Lemma 4.2: recording may be skipped because the
    guarding lock's ghost dependences subsume it). *)

type t = {
  shared_site : int -> bool;   (** instrument this site? *)
  guarded_site : int -> bool;  (** consistently lock-protected (O2)? *)
}

(** Sound default: every site is treated as potentially shared (the paper's
    baseline before applying the Soot/Chord analyses). *)
let all_shared = { shared_site = (fun _ -> true); guarded_site = (fun _ -> false) }

let of_tables ~(shared : (int, bool) Hashtbl.t) ~(guarded : (int, bool) Hashtbl.t) : t =
  {
    shared_site = (fun s -> Option.value ~default:false (Hashtbl.find_opt shared s));
    guarded_site = (fun s -> Option.value ~default:false (Hashtbl.find_opt guarded s));
  }
