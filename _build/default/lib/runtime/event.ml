(** Runtime events observed by record/replay tools.

    Every shared access — including the ghost accesses that model
    synchronization primitives per Section 4.3 — carries the identity
    [(tid, counter)] where [counter] is the thread-local counter [D(t)] of
    Algorithm 1, incremented by the interpreter on each shared access.
    Correlated transitions across runs share this identity (Definition 3.3). *)

type akind = Read | Write

(** Why a ghost access happened, for trace readability and for tools (such as
    Chimera) that treat lock operations specially. *)
type ghost_kind =
  | NotGhost
  | LockAcqRead   (** acquire models a read followed by a write... *)
  | LockAcqWrite  (** ...of the lock object's ghost field *)
  | LockRelWrite
  | SpawnWrite    (** parent writes the child's thread ghost *)
  | ThreadFirstRead  (** child's first transition reads it *)
  | ThreadExitWrite  (** child writes its ghost on termination *)
  | JoinRead
  | WaitRelWrite  (** wait_before: releasing write *)
  | WaitCondRead  (** wait_after: read of the condition ghost (pairs a notify) *)
  | WaitReacqRead
  | WaitReacqWrite
  | NotifyWrite

type access = {
  tid : int;
  c : int;            (** value of D(tid) for this access *)
  loc : Loc.t;
  kind : akind;
  site : int;         (** static site id, 0 for ghost accesses *)
  ghost : ghost_kind;
}

(** Pre-access descriptor handed to the replay gate before the effect. *)
type pre = access

type t =
  | Access of access * Value.t  (** the value read or written *)
  | SyscallEvent of { tid : int; idx : int; name : string; value : Value.t }
  | ThreadSpawned of { parent : int; child : int }
  | ThreadFinished of { tid : int }

let akind_str = function Read -> "R" | Write -> "W"

let pp_access fmt (a : access) =
  Fmt.pf fmt "(%d,%d):%s(%a)" a.tid a.c (akind_str a.kind) Loc.pp a.loc
