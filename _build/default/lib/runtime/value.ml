(** Runtime values.

    Object identities are allocated thread-deterministically (an object id
    encodes the allocating thread and its per-thread allocation index), so
    that two runs in which each thread performs the same local computation
    allocate identical ids — a prerequisite for the paper's Assumption 1
    (thread determinism) to extend to reference values. *)

type objid = int

type t =
  | VInt of int
  | VBool of bool
  | VNull
  | VRef of objid
  | VStr of string
  | VThread of int  (** thread handle *)

let to_string = function
  | VInt n -> string_of_int n
  | VBool b -> string_of_bool b
  | VNull -> "null"
  | VRef o -> Printf.sprintf "<obj%d>" o
  | VStr s -> s
  | VThread t -> Printf.sprintf "<thread%d>" t

let pp fmt v = Fmt.string fmt (to_string v)

let equal (a : t) (b : t) = a = b

(** Truthiness used by [if]/[while]/[assert]: booleans as themselves,
    any other value is a dynamic type error (handled by the interpreter). *)
let as_bool = function VBool b -> Some b | _ -> None

let as_int = function VInt n -> Some n | _ -> None

(** Stable key used to index map entries: every value maps to a distinct
    string (maps keyed by ints, strings, bools or refs). *)
let map_key = function
  | VInt n -> "i" ^ string_of_int n
  | VBool b -> "b" ^ string_of_bool b
  | VNull -> "null"
  | VRef o -> "r" ^ string_of_int o
  | VStr s -> "s" ^ s
  | VThread t -> "t" ^ string_of_int t
