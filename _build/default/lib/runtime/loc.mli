(** Memory locations: object id x field name, as in the paper's heap domain
    [Heap = O x FldId -> Val].  Array elements, map entries and the ghost
    fields modeling synchronization primitives (Section 4.3) are encoded as
    reserved field names so every layer handles one flat location type. *)

type t = { obj : Value.objid; field : string }

val field : Value.objid -> string -> t

(** Array element. *)
val elem : Value.objid -> int -> t

(** Map entry, keyed by value. *)
val mapkey : Value.objid -> Value.t -> t

(** Global variable slot. *)
val global : string -> t

val lock_ghost : Value.objid -> t
(** The ghost field abstracting a lock's owner/count state: acquisition is
    modeled as a read then a write of it, release as a write. *)

val cond_ghost : Value.objid -> t
(** Written by [notify]/[notifyAll]; read by the matching wait_after. *)

val thread_ghost : int -> t
(** Written at spawn (by the parent) and at termination (by the thread);
    read by the thread's first transition and by [join]. *)

val is_ghost : t -> bool

val equal : t -> t -> bool
val compare : t -> t -> int
val hash : t -> int
val to_string : t -> string
val pp : Format.formatter -> t -> unit

module Tbl : Hashtbl.S with type key = t
module Map : Map.S with type key = t
module Set : Set.S with type elt = t
