(** Memory locations: an object id paired with a field name, as in the
    paper's heap domain [Heap = O x FldId -> Val].

    Array elements, map entries and the ghost fields that model
    synchronization primitives (Section 4.3 of the paper) are all encoded as
    fields with reserved names, so every layer above deals with a single flat
    location type. *)

type t = { obj : Value.objid; field : string }

let field obj f = { obj; field = f }
let elem obj i = { obj; field = "#" ^ string_of_int i }
let mapkey obj (k : Value.t) = { obj; field = "@" ^ Value.map_key k }
let global g = { obj = 0; field = g }

(** Ghost field modeling the monitor state (owner/count) of a lock object. *)
let lock_ghost obj = { obj; field = "$lock" }

(** Ghost field written by [notify]/[notifyAll] and read by the matching
    wait_after transition. *)
let cond_ghost obj = { obj; field = "$cond" }

(** Ghost location written when thread [t] starts or terminates; the child's
    first transition and the parent's [join] read it. *)
let thread_ghost (t : int) = { obj = -(t + 1); field = "$thread" }

let is_ghost l = String.length l.field > 0 && l.field.[0] = '$'

let equal (a : t) (b : t) = a.obj = b.obj && String.equal a.field b.field
let compare (a : t) (b : t) =
  match Int.compare a.obj b.obj with 0 -> String.compare a.field b.field | c -> c

let hash (l : t) = Hashtbl.hash (l.obj, l.field)

let to_string (l : t) =
  if l.obj = 0 then l.field else Printf.sprintf "%d.%s" l.obj l.field

let pp fmt l = Fmt.string fmt (to_string l)

module Tbl = Hashtbl.Make (struct
  type nonrec t = t
  let equal = equal
  let hash = hash
end)

module Map = Map.Make (struct
  type nonrec t = t
  let compare = compare
end)

module Set = Set.Make (struct
  type nonrec t = t
  let compare = compare
end)
