lib/runtime/plan.ml: Hashtbl Option
