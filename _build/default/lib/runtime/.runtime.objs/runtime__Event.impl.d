lib/runtime/event.ml: Fmt Loc Value
