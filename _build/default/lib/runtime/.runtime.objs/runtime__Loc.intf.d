lib/runtime/loc.mli: Format Hashtbl Map Set Value
