lib/runtime/loc.ml: Fmt Hashtbl Int Map Printf Set String Value
