lib/runtime/sched.ml: Hashtbl List Printf Random
