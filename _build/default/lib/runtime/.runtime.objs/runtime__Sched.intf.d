lib/runtime/sched.mli:
