lib/runtime/value.ml: Fmt Printf
