lib/runtime/interp.ml: Ast Char Event Hashtbl Lang List Loc Option Plan Pp Printf Random Sched String Value
