(** The eight real-world bug models of Section 5.3 (Figure 6).

    Each model reproduces the cited bug's interaction pattern in the subject
    language, at kernel scale, with the properties the paper's H2 comparison
    turns on:

    - the three bugs Chimera misses (Cache4j, Tomcat-37458, Tomcat-50885)
      are {e statement-level data races inside methods that rarely run in
      parallel}: Chimera's patch wraps the racing methods in a mutual
      exclusion lock, and the buggy interleaving becomes impossible;
    - the five bugs Clap misses (Ftpserver, Lucene-481, Lucene-651,
      Tomcat-53498, Weblech) are {e atomicity violations across properly
      locked regions} whose state lives in hash maps / behind opaque
      computations — no data race for Chimera to serialize, but value
      reasoning outside the solver-supported fragment for Clap;
    - all eight arise from the use of an illegal value (Definition 3.2):
      null dereference, divide-by-zero, out-of-bounds index, assertion
      violation.

    [source scale] embeds background load proportional to [scale], so Table 1
    measurements can reproduce the paper's relative log sizes; reproduction
    tests use [scale = 1]. *)

type bug = {
  name : string;        (** paper's benchmark name *)
  bug_id : string;      (** Apache database id as cited *)
  kind : string;        (** exception class the bug raises *)
  summary : string;
  clap_supported : bool;   (** within the solver fragment (expected) *)
  chimera_hidden : bool;   (** patch serializes the bug away (expected) *)
  table1_scale : int;      (** background-load factor used for Table 1 *)
  source : int -> string;
}

let cache4j : bug =
  {
    name = "Cache4j";
    bug_id = "Cache4j (running example)";
    kind = "ArithmeticException";
    summary =
      "put() resets _createTime non-atomically; a concurrent get() observes \
       the transient 0 and divides by it when computing the object's age";
    clap_supported = true;
    chimera_hidden = true;
    table1_scale = 60;
    source =
      (fun scale ->
        Printf.sprintf
          {|
class CacheObject { createTime; value; }
global cache; global now; global stats;

fn put(v) {
  // resetCacheObject: the non-atomic two-step update (the race)
  cache.createTime = 0;
  cache.value = v;
  cache.createTime = now + v;
}

fn get() {
  t = cache.createTime;
  age = 1000 / t;          // ArithmeticException when caught mid-reset
  return age;
}

fn putter(n) {
  i = 0;
  while (i < n) { put(i + 1); i = i + 1; }
}

fn getter(n) {
  i = 0;
  while (i < n) { g = get(); stats.value = stats.value + g; i = i + 1; }
}

main {
  cache = new CacheObject;
  stats = new CacheObject;
  stats.value = 0;
  now = 5;
  cache.createTime = 1;
  cache.value = 0;
  spawn p = putter(%d);
  spawn g = getter(%d);
  join p;
  join g;
  print stats.value;
}
|}
          (4 * scale) (4 * scale));
  }

let ftpserver : bug =
  {
    name = "Ftpserver";
    bug_id = "FTPSERVER (connection close race)";
    kind = "NullPointerException";
    summary =
      "a handler checks the session's output stream under the lock, the \
       closer nulls it in its own locked region, and the handler's second \
       locked region dereferences the stale stream";
    clap_supported = false;  (* session state lives in a HashMap *)
    chimera_hidden = false;  (* fully locked: no race to patch *)
    table1_scale = 4;
    source =
      (fun scale ->
        Printf.sprintf
          {|
class Conn { out; user; }
class Stream { n; }
global sessions;   // user -> Conn
global lk;

fn close_session(u) {
  sync (lk) {
    c = sessions{u};
    c.out = null;      // close the stream
  }
}

fn handler(u, rounds) {
  i = 0;
  while (i < rounds) {
    ok = false;
    sync (lk) {
      c = sessions{u};
      o = c.out;
      if (o != null) { ok = true; }
    }
    if (ok) {
      // atomicity violation window: close_session may run here
      sync (lk) {
        c2 = sessions{u};
        o2 = c2.out;
        o2.n = o2.n + 1;   // NullPointerException
      }
    }
    i = i + 1;
  }
}

main {
  sessions = newmap;
  lk = new Conn;
  c0 = new Conn;
  s0 = new Stream;
  s0.n = 0;
  c0.out = s0;
  sync (lk) { sessions{7} = c0; }
  spawn h = handler(7, %d);
  spawn k = close_session(7);
  join h;
  join k;
  print 1;
}
|}
          (2 * scale));
  }

let lucene481 : bug =
  {
    name = "Lucene-481";
    bug_id = "LUCENE-481";
    kind = "AssertionError";
    summary =
      "IndexReader close races with a searcher: the reader's file table \
       (a hash map keyed by hashed segment names) is cleared between the \
       searcher's existence check and its read";
    clap_supported = false;  (* hash-keyed map + #hash computation *)
    chimera_hidden = false;
    table1_scale = 220;
    source =
      (fun scale ->
        Printf.sprintf
          {|
class Reader { open_; refs; }
global files;    // segment-hash -> doc count
global rdr;
global lk;

fn close_reader() {
  sync (lk) {
    rdr.open_ = 0;
    k = #hash("seg0");
    files{k} = null;      // release the segment table entry
  }
}

fn search(rounds) {
  i = 0;
  while (i < rounds) {
    k = #hash("seg0");
    avail = false;
    sync (lk) {
      st = rdr.open_;
      if (st == 1) { avail = true; }
    }
    if (avail) {
      sync (lk) {
        d = files{k};
        assert d != null;   // AssertionError: file table gone
        rdr.refs = rdr.refs + 1;
      }
    }
    i = i + 1;
  }
}

main {
  rdr = new Reader;
  rdr.open_ = 1;
  rdr.refs = 0;
  lk = new Reader;
  files = newmap;
  k0 = #hash("seg0");
  files{k0} = 10;
  spawn s = search(%d);
  spawn c = close_reader();
  join s;
  join c;
  print rdr.refs;
}
|}
          (3 * scale));
  }

let lucene651 : bug =
  {
    name = "Lucene-651";
    bug_id = "LUCENE-651";
    kind = "NullPointerException";
    summary =
      "two caches (per-field and per-reader, both hash maps) are updated in \
       separate locked regions; evicting one between a writer's two updates \
       leaves a dangling entry that a reader dereferences";
    clap_supported = false;
    chimera_hidden = false;
    table1_scale = 520;
    source =
      (fun scale ->
        Printf.sprintf
          {|
class Entry { v; }
global cacheA;   // field -> Entry
global cacheB;   // reader -> Entry (mirror)
global lk;

fn writer(rounds) {
  i = 0;
  while (i < rounds) {
    e = new Entry;
    e.v = i;
    sync (lk) { cacheA{i %% 3} = e; }
    // window: evictor may clear cacheB here
    sync (lk) { cacheB{i %% 3} = e; }
    i = i + 1;
  }
}

fn evictor(rounds) {
  i = 0;
  while (i < rounds) {
    sync (lk) { cacheB{i %% 3} = null; }
    i = i + 1;
  }
}

fn reader(rounds) {
  i = 0;
  while (i < rounds) {
    okA = false;
    sync (lk) {
      a = cacheA{i %% 3};
      if (a != null) { okA = true; }
    }
    if (okA) {
      sync (lk) {
        b = cacheB{i %% 3};
        x = b.v;            // NullPointerException: mirror evicted
      }
    }
    i = i + 1;
  }
}

main {
  cacheA = newmap;
  cacheB = newmap;
  lk = new Entry;
  spawn w = writer(%d);
  spawn e = evictor(%d);
  spawn r = reader(%d);
  join w;
  join e;
  join r;
  print 1;
}
|}
          (3 * scale) (2 * scale) (3 * scale));
  }

let tomcat37458 : bug =
  {
    name = "Tomcat-37458";
    bug_id = "Tomcat bug 37458";
    kind = "NullPointerException";
    summary =
      "session invalidation races with access: invalidate() nulls the \
       attribute table before clearing the valid flag, so a concurrent \
       getAttribute() passes the validity check and reads null";
    clap_supported = true;
    chimera_hidden = true;
    table1_scale = 4;
    source =
      (fun scale ->
        Printf.sprintf
          {|
class Session { valid; data; }
global sess;
global sink;

fn invalidate() {
  sess.data = null;     // wrong order: data cleared first
  sess.valid = 0;
}

fn access(rounds) {
  i = 0;
  while (i < rounds) {
    v = sess.valid;
    if (v == 1) {
      d = sess.data;
      x = d.valid;        // NullPointerException in the window
      sink.valid = x;
    }
    i = i + 1;
  }
}

main {
  sess = new Session;
  sink = new Session;
  aux = new Session;
  aux.valid = 9;
  sess.valid = 1;
  sess.data = aux;
  spawn a = access(%d);
  spawn b = invalidate();
  join a;
  join b;
  print 1;
}
|}
          (3 * scale));
  }

let tomcat50885 : bug =
  {
    name = "Tomcat-50885";
    bug_id = "Tomcat bug 50885";
    kind = "ArrayIndexOutOfBoundsException";
    summary =
      "a connection-pool counter is decremented without synchronization by \
       two rarely-parallel maintenance methods; the double decrement drives \
       the free-slot index negative";
    clap_supported = true;
    chimera_hidden = true;
    table1_scale = 130;
    source =
      (fun scale ->
        Printf.sprintf
          {|
class Pool { n; }
global pool;
global slots;
global sink;

fn release(rounds) {
  // racy check-then-decrement (no lock): safe when serialized, but two
  // interleaved releases both pass the check and double-decrement
  i = 0;
  while (i < rounds) {
    k = pool.n;
    if (k > 0) {
      pool.n = pool.n - 1;
      j = pool.n;
      x = slots[j];          // AIOOBE when double-decremented to -1
      sink.n = sink.n + x;
    }
    i = i + 1;
  }
}

main {
  pool = new Pool;
  sink = new Pool;
  sink.n = 0;
  slots = new[4];
  pool.n = 1;
  spawn r1 = release(%d);
  spawn r2 = release(%d);
  join r1;
  join r2;
  print pool.n;
}
|}
          scale scale);
  }

let tomcat53498 : bug =
  {
    name = "Tomcat-53498";
    bug_id = "Tomcat bug 53498";
    kind = "NullPointerException";
    summary =
      "a registry's get-or-create is split across two locked regions; a \
       concurrent shutdown clears the registry map between them, and the \
       creator's published entry vanishes before use";
    clap_supported = false;
    chimera_hidden = false;
    table1_scale = 9;
    source =
      (fun scale ->
        Printf.sprintf
          {|
class Box { v; }
global registry;   // name -> Box
global lk;

fn get_or_create(key, rounds) {
  i = 0;
  while (i < rounds) {
    have = false;
    sync (lk) {
      h = maphas(registry, key);
      if (h) { have = true; }
    }
    if (!have) {
      b = new Box;
      b.v = key;
      sync (lk) { registry{key} = b; }
    }
    // use it; shutdown may have cleared the map in between
    sync (lk) {
      e = registry{key};
      u = e.v;             // NullPointerException
    }
    i = i + 1;
  }
}

fn shutdown() {
  sync (lk) {
    registry{1} = null;
    registry{2} = null;
  }
}

main {
  registry = newmap;
  lk = new Box;
  spawn a = get_or_create(1, %d);
  spawn b = get_or_create(2, %d);
  spawn s = shutdown();
  join a;
  join b;
  join s;
  print 1;
}
|}
          (2 * scale) (2 * scale));
  }

let weblech : bug =
  {
    name = "Weblech";
    bug_id = "Weblech (crawler queue race)";
    kind = "NullPointerException";
    summary =
      "the crawler's download queue and visited set (hash maps keyed by \
       url strings) are updated in separate locked regions; a concurrent \
       drain empties the queue between a worker's poll check and its take";
    clap_supported = false;
    chimera_hidden = false;
    table1_scale = 1;
    source =
      (fun scale ->
        Printf.sprintf
          {|
class Url { s; }
global queue;     // depth -> url string
global visited;   // url -> flag
global lk;

fn worker(rounds) {
  i = 0;
  while (i < rounds) {
    url = "";
    nonempty = false;
    sync (lk) {
      h = maphas(queue, 0);
      if (h) { nonempty = true; }
    }
    if (nonempty) {
      sync (lk) {
        u = queue{0};
        s = #strcat(u.s, "/page");   // NullPointerException on drained queue
        visited{s} = 1;
      }
    }
    i = i + 1;
  }
}

fn drainer() {
  sync (lk) { queue{0} = null; }
}

main {
  queue = newmap;
  visited = newmap;
  lk = new Url;
  u0 = new Url;
  u0.s = "http://root";
  queue{0} = u0;
  spawn w = worker(%d);
  spawn d = drainer();
  join w;
  join d;
  print 1;
}
|}
          (2 * scale));
  }

let all : bug list =
  [ cache4j; ftpserver; lucene481; lucene651; tomcat37458; tomcat50885; tomcat53498; weblech ]

let by_name (n : string) : bug option =
  List.find_opt (fun b -> String.lowercase_ascii b.name = String.lowercase_ascii n) all

(* Table-1 background load: the paper's bugs occur inside full application
   runs, so the recorded logs are dominated by ordinary (non-buggy) shared
   traffic.  [inject_background] adds two worker threads hammering a wide
   shared array; the per-bug [table1_scale] reproduces the paper's relative
   log sizes.  The array is wide (128 slots) so per-location dependence
   chains stay short and constraint generation stays tractable, as in any
   realistic heap. *)
let inject_background (src : string) ~(iters : int) : string =
  let decls =
    Printf.sprintf
      {|
global $bgarr;
fn $bgload(id) {
  arr = $bgarr;
  i = 0;
  while (i < %d) {
    v = arr[(id * 31 + i * 7) %% 128];
    arr[(id * 17 + i * 11) %% 128] = v + id;
    i = i + 1;
  }
}
|}
      iters
  in
  let prefix = "\n$bgarr = new[128];\nspawn $bg1 = $bgload(1);\nspawn $bg2 = $bgload(2);\n" in
  let suffix = "join $bg1;\njoin $bg2;\n" in
  match String.index_opt src 'm' with
  | _ ->
    let marker = "main {" in
    let rec find i =
      if i + String.length marker > String.length src then None
      else if String.sub src i (String.length marker) = marker then Some i
      else find (i + 1)
    in
    (match find 0, String.rindex_opt src '}' with
    | Some mi, Some last ->
      let insert_at = mi + String.length marker in
      decls
      ^ String.sub src 0 insert_at
      ^ prefix
      ^ String.sub src insert_at (last - insert_at)
      ^ suffix
      ^ String.sub src last (String.length src - last)
    | _ -> src)

let program_of (b : bug) ?(scale = 1) ?(background = false) () : Lang.Ast.program =
  let src = b.source scale in
  let src = if background then inject_background src ~iters:(scale * 4) else src in
  Lang.Check.validate_exn (Lang.Parser.parse_program src)
