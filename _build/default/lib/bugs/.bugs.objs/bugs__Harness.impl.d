lib/bugs/harness.ml: Baselines Defs Instrument Interp Lang Light_core List Plan Printf Runtime Sched String
