lib/bugs/defs.ml: Lang List Printf String
