lib/metrics/stats.ml: Fmt List Printf
