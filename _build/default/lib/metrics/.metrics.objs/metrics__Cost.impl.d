lib/metrics/cost.ml: Array Runtime
