(** Aggregate statistics over per-benchmark measurements (the summary tables
    of Section 5.2). *)

type summary = { average : float; median : float; minimum : float; maximum : float }

let summarize (xs : float list) : summary =
  match xs with
  | [] -> { average = 0.; median = 0.; minimum = 0.; maximum = 0. }
  | _ ->
    let n = List.length xs in
    let sorted = List.sort compare xs in
    let nth k = List.nth sorted k in
    let median =
      if n mod 2 = 1 then nth (n / 2) else (nth ((n / 2) - 1) +. nth (n / 2)) /. 2.0
    in
    {
      average = List.fold_left ( +. ) 0.0 xs /. float_of_int n;
      median;
      minimum = nth 0;
      maximum = nth (n - 1);
    }

let pp_summary ?(scale = 1.0) ?(fmt : (float -> string) option) ppf (s : summary) =
  let f = match fmt with Some f -> f | None -> Printf.sprintf "%.2f" in
  Fmt.pf ppf "avg %s | med %s | min %s | max %s" (f (s.average *. scale))
    (f (s.median *. scale)) (f (s.minimum *. scale)) (f (s.maximum *. scale))
