lib/report/chart.ml: Array Buffer Fmt List Printf String
