lib/report/experiments.ml: Baselines Bugs Chart Fmt Instrument Interp Light_core List Metrics Option Printf Runtime Unix Workloads
