(** ASCII rendering for the paper's figures: grouped horizontal bars
    normalized per benchmark (Figures 4/5) and stacked percentage bars
    (Figure 7). *)

let bar_width = 44

let bar (frac : float) (ch : char) : string =
  let n = int_of_float (frac *. float_of_int bar_width +. 0.5) in
  String.make (max 0 (min bar_width n)) ch

(** Grouped comparison: one block per row, each series normalized to the
    row's maximum (the presentation style of Figures 4 and 5). *)
let grouped ~(title : string) ~(series : string list)
    (rows : (string * float list) list) ppf : unit =
  Fmt.pf ppf "%s@." title;
  Fmt.pf ppf "%s@." (String.make (String.length title) '=');
  let chars = [| '#'; '%'; '.'; 'o'; '+' |] in
  List.iter
    (fun (name, values) ->
      let mx = List.fold_left max 1e-12 values in
      Fmt.pf ppf "%-16s@." name;
      List.iteri
        (fun i v ->
          let label = List.nth series i in
          Fmt.pf ppf "  %-7s |%-*s| %.2f@." label bar_width
            (bar (v /. mx) chars.(i mod Array.length chars))
            v)
        values)
    rows;
  Fmt.pf ppf "@."

(** Stacked percentage bars: each row's segments sum to 100%% of the basic
    version (Figure 7). *)
let stacked ~(title : string) ~(segments : string list)
    (rows : (string * float list) list) ppf : unit =
  Fmt.pf ppf "%s@." title;
  Fmt.pf ppf "%s@." (String.make (String.length title) '=');
  let chars = [| '#'; '.'; ' ' |] in
  Fmt.pf ppf "  legend: %s@."
    (String.concat "  "
       (List.mapi
          (fun i s -> Printf.sprintf "'%c' = %s" chars.(i mod Array.length chars) s)
          segments));
  List.iter
    (fun (name, fracs) ->
      let total = List.fold_left ( +. ) 0.0 fracs in
      let fracs = if total > 0.0 then List.map (fun f -> f /. total) fracs else fracs in
      let buf = Buffer.create bar_width in
      List.iteri
        (fun i f ->
          let n = int_of_float (f *. float_of_int bar_width +. 0.5) in
          Buffer.add_string buf (String.make (max 0 n) chars.(i mod Array.length chars)))
        fracs;
      let s = Buffer.contents buf in
      let s =
        if String.length s > bar_width then String.sub s 0 bar_width
        else s ^ String.make (bar_width - String.length s) ' '
      in
      Fmt.pf ppf "  %-16s |%s| %s@." name s
        (String.concat " / " (List.map (fun f -> Printf.sprintf "%2.0f%%" (100. *. f)) fracs)))
    rows;
  Fmt.pf ppf "@."

(** Simple aligned table. *)
let table ~(title : string) ~(header : string list) (rows : string list list) ppf : unit =
  let all = header :: rows in
  let ncols = List.fold_left (fun m r -> max m (List.length r)) 0 all in
  let width c =
    List.fold_left
      (fun m r -> match List.nth_opt r c with Some s -> max m (String.length s) | None -> m)
      0 all
  in
  let widths = List.init ncols width in
  let pr row =
    Fmt.pf ppf "  %s@."
      (String.concat "  "
         (List.mapi
            (fun i s -> Printf.sprintf "%-*s" (List.nth widths i) s)
            (row @ List.init (ncols - List.length row) (fun _ -> ""))))
  in
  Fmt.pf ppf "%s@." title;
  Fmt.pf ppf "%s@." (String.make (String.length title) '=');
  pr header;
  pr (List.map (fun w -> String.make w '-') widths);
  List.iter pr rows;
  Fmt.pf ppf "@."
