(** Driving the Integer Difference Logic solver directly: encode the
    worked example of Section 4.2 and recover the paper's schedule.

    The trace (thread-local counters in parentheses):
    {v
        t1              t2
                        c3: W(y)
                        c4: W(x)
                        c5: R(x)
        c1: W(x)
        c2: R(y)
                        c6: R(x)
    v}
    Recorded flow dependences: c4 -> c5, c1 -> c6, c3 -> c2.

    Run with: dune exec examples/solver_demo.exe *)

open Dlsolver

let () =
  (* order variables O(c1..c6), indexed 0..5 *)
  let o c = c - 1 in
  let name = [| "c1"; "c2"; "c3"; "c4"; "c5"; "c6" |] in
  let hard =
    [
      (* flow dependences *)
      Idl.lt (o 4) (o 5);   (* O(c4) < O(c5) *)
      Idl.lt (o 1) (o 6);   (* O(c1) < O(c6) *)
      Idl.lt (o 3) (o 2);   (* O(c3) < O(c2) *)
      (* thread-local orders *)
      Idl.lt (o 1) (o 2);
      Idl.lt (o 3) (o 4);
      Idl.lt (o 4) (o 5);
      Idl.lt (o 5) (o 6);
    ]
  in
  (* noninterference on x between (c4 -> c5) and (c1 -> c6):
     O(c5) < O(c1)  \/  O(c6) < O(c4) *)
  let clauses = [| [| Idl.lt (o 5) (o 1); Idl.lt (o 6) (o 4) |] |] in
  match Idl.solve { nvars = 6; hard; clauses } with
  | Sat (model, stats) ->
    let order =
      List.sort
        (fun a b -> compare (model.(o a), a) (model.(o b), b))
        [ 1; 2; 3; 4; 5; 6 ]
    in
    Printf.printf "replay schedule: %s\n"
      (String.concat " < " (List.map (fun c -> name.(o c)) order));
    Printf.printf "(paper, Section 4.2: c3 < c4 < c5 < c1 < c2 ... with c6 after c1)\n";
    Printf.printf "solver: %d decisions, %d backtracks, %d theory conflicts\n"
      stats.decisions stats.backtracks stats.theory_conflicts;
    (* verify the noninterference disjunct chosen *)
    if model.(o 5) < model.(o 1) then
      print_endline "chose O(c5) < O(c1): t2's dependence on x scheduled first"
    else print_endline "chose O(c6) < O(c4)"
  | Unsat _ -> print_endline "unsat (unexpected)"
  | Aborted _ -> print_endline "aborted (unexpected)"
