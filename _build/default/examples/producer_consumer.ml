(** Record/replay across the full synchronization vocabulary: a bounded
    producer/consumer pipeline with wait/notify, nested monitors and joins.
    Shows the Section 4.3 modeling — lock and condition ghosts — in action:
    the replayed run pairs every notify with the same waiter.

    Run with: dune exec examples/producer_consumer.exe *)

let src = {|
  class Buf { count; total; closed; }
  global buf;

  fn producer(items) {
    i = 0;
    while (i < items) {
      sync (buf) {
        while (buf.count >= 4) { wait buf; }   // bounded at 4
        buf.count = buf.count + 1;
        buf.total = buf.total + i;
        notifyall buf;
      }
      i = i + 1;
    }
    sync (buf) {
      buf.closed = buf.closed + 1;
      notifyall buf;
    }
  }

  fn consumer() {
    got = 0;
    running = true;
    while (running) {
      sync (buf) {
        while (buf.count == 0 && buf.closed < 2) { wait buf; }
        if (buf.count > 0) {
          buf.count = buf.count - 1;
          got = got + 1;
          notifyall buf;
        } else {
          running = false;
        }
      }
    }
    return got;
  }

  main {
    buf = new Buf;
    sync (buf) { buf.count = 0; buf.total = 0; buf.closed = 0; }
    spawn c1 = consumer();
    spawn c2 = consumer();
    spawn p1 = producer(12);
    spawn p2 = producer(12);
    join p1; join p2;
    join c1; join c2;
    print buf.total;
    print buf.count;
  }
|}

let () =
  let program = Lang.Check.validate_exn (Lang.Parser.parse_program src) in
  (* the fully locked discipline means O2 subsumes all field recording:
     only the lock/condition ghost order is logged *)
  let ok = ref 0 in
  let total = ref 0 in
  List.iter
    (fun seed ->
      incr total;
      let sched = Runtime.Sched.sticky ~seed ~stickiness:4 in
      match Light_core.Light.record_and_replay ~sched program with
      | Error e -> Printf.printf "seed %d: solver error: %s\n" seed e
      | Ok (r, rr) ->
        if rr.faithful = [] then begin
          incr ok;
          Printf.printf
            "seed %2d: faithful replay — %3d records (%d longs) for %d shared accesses\n"
            seed
            (Light_core.Log.num_records r.log)
            r.space_longs
            (List.fold_left (fun a (_, c) -> a + c) 0 r.outcome.counters)
        end
        else begin
          Printf.printf "seed %2d: MISMATCH\n" seed;
          List.iter print_endline rr.faithful
        end)
    [ 1; 2; 3; 4; 5; 6; 7; 8 ];
  Printf.printf "%d/%d schedules replayed faithfully\n" !ok !total
