(** The paper's motivating scenario (Sections 1-2): a Cache4j crash that
    manifests only under a rare interleaving.  We search for a failing
    schedule, record it with Light, and replay the crash deterministically —
    then show why the two alternative approaches miss it.

    Run with: dune exec examples/cache4j_debug.exe *)

let () =
  let bug = Option.get (Bugs.Defs.by_name "Cache4j") in
  Printf.printf "bug: %s — %s\n  (%s)\n\n" bug.name bug.kind bug.summary;
  let program = Bugs.Defs.program_of bug () in

  (* profiling: hunt for a schedule that triggers the failure *)
  match Bugs.Harness.find_trigger ~tries:60 program with
  | None -> print_endline "no triggering schedule found (raise ~tries)"
  | Some trigger ->
    Printf.printf "triggering schedule found: %s\n" trigger.descr;
    List.iter
      (fun (c : Runtime.Interp.crash) ->
        Printf.printf "  thread %d crashes at line %d: %s\n" c.tid c.line c.msg)
      trigger.outcome.crashes;

    (* Light: record that run and replay the crash *)
    let light = Bugs.Harness.try_light bug trigger in
    Printf.printf "\nLight:   %s (%s)\n"
      (if light.reproduced then "crash REPRODUCED deterministically" else "failed")
      light.detail;

    (* Clap: records only branches; must synthesize the schedule from values *)
    let clap = Bugs.Harness.try_clap bug trigger in
    Printf.printf "Clap:    %s (%s)\n"
      (if clap.reproduced then "reproduced" else "failed")
      clap.detail;

    (* Chimera: patches the racing methods with locks first *)
    let chimera = Bugs.Harness.try_chimera bug trigger in
    Printf.printf "Chimera: %s (%s)\n"
      (if chimera.reproduced then "reproduced" else "failed")
      chimera.detail;

    print_newline ();
    print_endline
      "Cache4j's race is inside two rarely-parallel methods, so Chimera's patch\n\
       serializes it away — exactly the failure mode Section 5.3 reports.  Light's\n\
       flow-dependence recording reproduces it with a formal guarantee (Theorem 1)."
