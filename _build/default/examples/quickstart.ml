(** Quickstart: record a racy run, solve for a schedule, replay, verify.

    Run with: dune exec examples/quickstart.exe *)

let program_src = {|
  class Counter { n; }
  global c;

  fn worker(times) {
    while (times > 0) {
      c.n = c.n + 1;      // unsynchronized increment: a data race
      times = times - 1;
    }
  }

  main {
    c = new Counter;
    c.n = 0;
    spawn a = worker(50);
    spawn b = worker(50);
    join a;
    join b;
    print c.n;            // often < 100: lost updates
  }
|}

let () =
  (* 1. parse and validate *)
  let program = Lang.Check.validate_exn (Lang.Parser.parse_program program_src) in

  (* 2. pick a nondeterministic scheduler — this is the "original run" *)
  let sched = Runtime.Sched.sticky ~seed:42 ~stickiness:5 in

  (* 3. record with the Light recorder (Algorithm 1 + O1 + O2) *)
  let recording = Light_core.Light.record ~sched program in
  let printed =
    match recording.outcome.outputs with (_, [ v ]) :: _ -> v | _ -> "?"
  in
  Printf.printf "original run printed: %s (racy: lost updates are possible)\n" printed;
  Printf.printf "recorded %d flow-dependence records = %d long-integers, overhead %.0f%%\n"
    (Light_core.Log.num_records recording.log)
    recording.space_longs
    (100. *. recording.overhead);

  (* 4. solve the scheduling constraints offline and replay *)
  match Light_core.Light.replay recording with
  | Error e -> prerr_endline ("replay failed: " ^ e)
  | Ok result ->
    Printf.printf "solver: %d order variables, %d noninterference clauses, %.4fs\n"
      result.report.n_vars result.report.n_clauses result.report.solve_time_s;
    let replayed =
      match result.replay_outcome.outputs with (_, [ v ]) :: _ -> v | _ -> "?"
    in
    Printf.printf "replay run printed: %s\n" replayed;

    (* 5. the Theorem-1 guarantee: every read sees the same value *)
    if result.faithful = [] then
      print_endline "deterministic replay: every shared read saw the original value"
    else begin
      print_endline "REPLAY MISMATCH (this should never happen):";
      List.iter print_endline result.faithful
    end
