examples/cache4j_debug.mli:
