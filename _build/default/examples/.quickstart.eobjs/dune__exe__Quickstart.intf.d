examples/quickstart.mli:
