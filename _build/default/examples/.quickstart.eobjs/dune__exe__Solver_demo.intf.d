examples/solver_demo.mli:
