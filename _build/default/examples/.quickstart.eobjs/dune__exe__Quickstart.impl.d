examples/quickstart.ml: Lang Light_core List Printf Runtime
