examples/solver_demo.ml: Array Dlsolver Idl List Printf String
