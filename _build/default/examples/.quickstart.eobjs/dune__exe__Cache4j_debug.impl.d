examples/cache4j_debug.ml: Bugs List Option Printf Runtime
