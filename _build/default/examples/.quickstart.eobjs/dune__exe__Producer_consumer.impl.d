examples/producer_consumer.ml: Lang Light_core List Printf Runtime
