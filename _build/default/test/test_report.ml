(* Report-layer tests (chart rendering, experiment plumbing) and
   whole-corpus properties: every bug model and every workload program
   pretty-prints, reparses and revalidates. *)

let render f =
  let buf = Buffer.create 1024 in
  let ppf = Format.formatter_of_buffer buf in
  f ppf;
  Format.pp_print_flush ppf ();
  Buffer.contents buf

let contains hay needle =
  let n = String.length needle and h = String.length hay in
  let rec go i = i + n <= h && (String.sub hay i n = needle || go (i + 1)) in
  n = 0 || go 0

(* ------------------------------------------------------------------ *)
(* Chart                                                               *)
(* ------------------------------------------------------------------ *)

let test_grouped () =
  let out =
    render
      (Report.Chart.grouped ~title:"T" ~series:[ "A"; "B" ]
         [ ("row1", [ 1.0; 2.0 ]); ("row2", [ 4.0; 1.0 ]) ])
  in
  Alcotest.(check bool) "title" true (contains out "T");
  Alcotest.(check bool) "series label" true (contains out "A");
  Alcotest.(check bool) "value printed" true (contains out "4.00");
  (* the per-row maximum fills the bar *)
  Alcotest.(check bool) "full bar for max" true (contains out (String.make 44 '#'))

let test_stacked () =
  let out =
    render
      (Report.Chart.stacked ~title:"S" ~segments:[ "x"; "y"; "z" ]
         [ ("r", [ 0.5; 0.25; 0.25 ]) ])
  in
  Alcotest.(check bool) "percentages" true (contains out "50%");
  Alcotest.(check bool) "legend" true (contains out "legend")

let test_stacked_zero_row () =
  (* all-zero rows must not divide by zero *)
  let out =
    render (Report.Chart.stacked ~title:"Z" ~segments:[ "x" ] [ ("r", [ 0.0 ]) ])
  in
  Alcotest.(check bool) "renders" true (String.length out > 0)

let test_table () =
  let out =
    render
      (Report.Chart.table ~title:"Tbl" ~header:[ "a"; "b" ]
         [ [ "1"; "22" ]; [ "333" ] ])
  in
  Alcotest.(check bool) "pads ragged rows" true (contains out "333")

(* ------------------------------------------------------------------ *)
(* Corpus roundtrips                                                    *)
(* ------------------------------------------------------------------ *)

let reparses (name : string) (p : Lang.Ast.program) =
  let printed = Lang.Pp.to_string p in
  match Lang.Parser.parse_program printed with
  | p2 ->
    (match Lang.Check.validate p2 with
    | [] -> ()
    | errs ->
      Alcotest.failf "%s: reprint fails validation: %s" name
        (Lang.Check.error_to_string (List.hd errs)))
  | exception Lang.Parser.Parse_error (m, l) ->
    Alcotest.failf "%s: reprint fails to parse (%s at line %d)" name m l

let test_bug_sources_roundtrip () =
  List.iter
    (fun (b : Bugs.Defs.bug) ->
      reparses b.name (Bugs.Defs.program_of b ());
      reparses (b.name ^ "+bg") (Bugs.Defs.program_of b ~background:true ()))
    Bugs.Defs.all

let test_workload_sources_roundtrip () =
  List.iter
    (fun (bm : Workloads.benchmark) -> reparses bm.name (Workloads.program bm))
    Workloads.all

let test_patched_sources_roundtrip () =
  List.iter
    (fun (b : Bugs.Defs.bug) ->
      let pi = Baselines.Chimera.patch (Bugs.Defs.program_of b ()) in
      reparses (b.name ^ "-patched") pi.patched)
    Bugs.Defs.all

(* ------------------------------------------------------------------ *)
(* Experiment plumbing                                                  *)
(* ------------------------------------------------------------------ *)

let test_measurements_deterministic () =
  let bm = Option.get (Workloads.by_name "jgf-sparse") in
  let m1 = Report.Experiments.measure_benchmark bm in
  let m2 = Report.Experiments.measure_benchmark bm in
  Alcotest.(check bool) "same overheads" true
    (m1.leap.overhead = m2.leap.overhead
    && m1.light_both.overhead = m2.light_both.overhead);
  Alcotest.(check int) "same space" m1.light_both.space_longs m2.light_both.space_longs

let test_fig_rendering () =
  let ms =
    List.filter_map Workloads.by_name [ "jgf-series"; "dacapo-h2" ]
    |> List.map (Report.Experiments.measure_benchmark ?scale:None ?seed:None)
  in
  let f4 = render (Report.Experiments.fig4 ms) in
  Alcotest.(check bool) "fig4 mentions Leap" true (contains f4 "Leap");
  let f7 = render (Report.Experiments.fig7 ms) in
  Alcotest.(check bool) "fig7 mentions O1" true (contains f7 "O1")

let () =
  Alcotest.run "report"
    [
      ( "chart",
        [
          Alcotest.test_case "grouped bars" `Quick test_grouped;
          Alcotest.test_case "stacked bars" `Quick test_stacked;
          Alcotest.test_case "zero rows safe" `Quick test_stacked_zero_row;
          Alcotest.test_case "tables" `Quick test_table;
        ] );
      ( "corpus",
        [
          Alcotest.test_case "bug sources roundtrip" `Quick test_bug_sources_roundtrip;
          Alcotest.test_case "workload sources roundtrip" `Quick test_workload_sources_roundtrip;
          Alcotest.test_case "patched sources roundtrip" `Quick test_patched_sources_roundtrip;
        ] );
      ( "experiments",
        [
          Alcotest.test_case "measurement determinism" `Slow test_measurements_deterministic;
          Alcotest.test_case "figure rendering" `Slow test_fig_rendering;
        ] );
    ]
