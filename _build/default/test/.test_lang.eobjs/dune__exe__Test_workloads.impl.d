test/test_workloads.ml: Alcotest Instrument Interp Light_core List Option Report Runtime Workloads
