test/test_recorder.ml: Alcotest Hashtbl Lang Lazy Light Light_core List Loc Log Option Printf QCheck QCheck_alcotest Recorder Runtime Sched
