test/test_bugs.ml: Alcotest Bugs Light_core List Option Printf
