test/test_solver.ml: Alcotest Array Diff_graph Dlsolver Idl List Printf QCheck QCheck_alcotest String
