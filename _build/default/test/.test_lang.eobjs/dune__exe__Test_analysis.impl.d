test/test_analysis.ml: Alcotest Analysis Analyze Callgraph Instrument Lang List Runtime Sites String
