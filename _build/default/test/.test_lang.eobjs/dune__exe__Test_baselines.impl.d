test/test_baselines.ml: Alcotest Analysis Array Baselines Instrument Interp Lang List Runtime Sched String
