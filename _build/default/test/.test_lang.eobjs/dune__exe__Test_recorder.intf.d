test/test_recorder.mli:
