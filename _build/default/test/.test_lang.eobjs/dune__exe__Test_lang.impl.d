test/test_lang.ml: Alcotest Ast Check Lang Lexer List Parser Pp Printf QCheck QCheck_alcotest String
