test/test_replay.ml: Alcotest Hashtbl Interp Lang Light Light_core List Log Printf QCheck QCheck_alcotest Recorder Runtime Sched String
