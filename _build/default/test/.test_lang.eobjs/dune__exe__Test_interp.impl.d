test/test_interp.ml: Alcotest Interp Lang List Printf Runtime Sched String
