test/test_metrics.ml: Alcotest Cost List Metrics QCheck QCheck_alcotest Runtime Stats
