test/test_report.ml: Alcotest Baselines Buffer Bugs Format Lang List Option Report String Workloads
