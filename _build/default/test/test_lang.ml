(* Lexer, parser, desugaring, validator and pretty-printer tests. *)

open Lang

let parse s = Parser.parse_program s
let parse_ok s = Check.validate_exn (parse s)

(* ------------------------------------------------------------------ *)
(* Lexer                                                               *)
(* ------------------------------------------------------------------ *)

let test_lexer_basic () =
  let toks = Lexer.tokenize "x = 42; // comment\ny = \"hi\\n\";" in
  let kinds = List.map (fun (t : Lexer.located) -> t.tok) toks in
  Alcotest.(check bool) "ident first" true
    (match kinds with Lexer.IDENT "x" :: _ -> true | _ -> false);
  Alcotest.(check bool) "has int 42" true (List.mem (Lexer.INT 42) kinds);
  Alcotest.(check bool) "string unescaped" true (List.mem (Lexer.STRING "hi\n") kinds);
  Alcotest.(check bool) "ends with EOF" true (List.mem Lexer.EOF kinds)

let test_lexer_operators () =
  let toks = Lexer.tokenize "== != <= >= && || ! < > + - * / %" in
  let kinds = List.map (fun (t : Lexer.located) -> t.tok) toks in
  List.iter
    (fun k -> Alcotest.(check bool) (Lexer.token_name k) true (List.mem k kinds))
    [ Lexer.EQEQ; NEQ; LE; GE; ANDAND; OROR; BANG; LT; GT; PLUS; MINUS; STAR; SLASH; PERCENT ]

let test_lexer_line_numbers () =
  let toks = Lexer.tokenize "a\nb\n\nc" in
  let lines =
    List.filter_map
      (fun (t : Lexer.located) ->
        match t.tok with Lexer.IDENT _ -> Some t.line | _ -> None)
      toks
  in
  Alcotest.(check (list int)) "line tracking" [ 1; 2; 4 ] lines

let test_lexer_block_comment () =
  let toks = Lexer.tokenize "a /* multi\nline */ b" in
  let idents =
    List.filter_map
      (fun (t : Lexer.located) -> match t.tok with Lexer.IDENT s -> Some s | _ -> None)
      toks
  in
  Alcotest.(check (list string)) "comment skipped" [ "a"; "b" ] idents

let test_lexer_errors () =
  Alcotest.check_raises "unterminated string" (Lexer.Lex_error ("unterminated string", 1))
    (fun () -> ignore (Lexer.tokenize "\"abc"));
  Alcotest.(check bool) "bad char raises" true
    (try ignore (Lexer.tokenize "a ^ b"); false with Lexer.Lex_error _ -> true)

let test_lexer_sys_opaque () =
  let toks = Lexer.tokenize "@time #hash" in
  let kinds = List.map (fun (t : Lexer.located) -> t.tok) toks in
  Alcotest.(check bool) "syscall token" true (List.mem (Lexer.SYS "time") kinds);
  Alcotest.(check bool) "opaque token" true (List.mem (Lexer.OP "hash") kinds)

(* ------------------------------------------------------------------ *)
(* Parser and desugaring                                                *)
(* ------------------------------------------------------------------ *)

let count_stmts p = Ast.fold_stmts (fun n _ -> n + 1) 0 p

(* every statement is in simple format: pure expressions never touch heap,
   so the only check needed is that parsing produced dedicated Load forms *)
let test_desugar_nested_loads () =
  let p = parse "class C { f; g; } main { x = new C; y = x.f + x.g; }" in
  let loads = Ast.fold_stmts (fun n s -> match s.node with Ast.Load _ -> n + 1 | _ -> n) 0 p in
  Alcotest.(check int) "two hoisted loads" 2 loads

let test_desugar_global () =
  let p = parse "global g; main { g = 5; x = g + 1; }" in
  let gl = Ast.fold_stmts (fun n s -> match s.node with Ast.GlobalLoad _ -> n + 1 | _ -> n) 0 p in
  let gs = Ast.fold_stmts (fun n s -> match s.node with Ast.GlobalStore _ -> n + 1 | _ -> n) 0 p in
  Alcotest.(check int) "one global load" 1 gl;
  Alcotest.(check int) "one global store" 1 gs

let test_desugar_while_cond () =
  (* the while condition reads the heap: its loads must be re-emitted at the
     end of the body so each iteration re-reads *)
  let p = parse "class C { f; } main { x = new C; while (x.f > 0) { x.f = x.f - 1; } }" in
  let loads = Ast.fold_stmts (fun n s -> match s.node with Ast.Load _ -> n + 1 | _ -> n) 0 p in
  (* one before the loop, one inside (for the store's rhs), one re-emitted *)
  Alcotest.(check bool) "at least 3 loads" true (loads >= 3)

let test_parse_precedence () =
  let p = parse "main { x = 1 + 2 * 3; }" in
  let found =
    Ast.fold_stmts
      (fun acc s ->
        match s.node with
        | Ast.Assign ("x", Binop (Add, Int 1, Binop (Mul, Int 2, Int 3))) -> true
        | _ -> acc)
      false p
  in
  Alcotest.(check bool) "mul binds tighter" true found

let test_parse_else_if () =
  let p = parse "main { x = 1; if (x == 1) { y = 1; } else if (x == 2) { y = 2; } else { y = 3; } }" in
  Alcotest.(check bool) "parses" true (count_stmts p > 0)

let test_parse_sync_spawn () =
  let p =
    parse_ok
      "class L {} global l; fn w(a) { sync (l) { nop; } } main { l = new L; spawn t = w(1); join t; }"
  in
  let spawns = Ast.fold_stmts (fun n s -> match s.node with Ast.Spawn _ -> n + 1 | _ -> n) 0 p in
  Alcotest.(check int) "spawn parsed" 1 spawns

let test_parse_map_syntax () =
  let p = parse "main { m = newmap; m{1} = 2; x = m{1}; h = maphas(m, 1); }" in
  let puts = Ast.fold_stmts (fun n s -> match s.node with Ast.MapPut _ -> n + 1 | _ -> n) 0 p in
  let gets = Ast.fold_stmts (fun n s -> match s.node with Ast.MapGet _ -> n + 1 | _ -> n) 0 p in
  Alcotest.(check (pair int int)) "map ops" (1, 1) (puts, gets)

let test_parse_errors () =
  let bad = [ "main { x = ; }"; "main { if x { } }"; "fn f() { }"; "main { x = 1 }" ] in
  List.iter
    (fun src ->
      Alcotest.(check bool) ("rejects: " ^ src) true
        (try ignore (parse src); false with Parser.Parse_error _ -> true))
    bad

let test_unique_sids () =
  let p = parse "main { x = 1; while (x < 10) { x = x + 1; if (x == 5) { x = x + 2; } } }" in
  let sids = Ast.fold_stmts (fun acc s -> s.sid :: acc) [] p in
  Alcotest.(check int) "sids unique" (List.length sids)
    (List.length (List.sort_uniq compare sids))

(* ------------------------------------------------------------------ *)
(* Validator                                                            *)
(* ------------------------------------------------------------------ *)

let errs s = List.length (Check.validate (parse s))

let test_check_errors () =
  Alcotest.(check bool) "unknown class" true (errs "main { x = new Foo; }" > 0);
  Alcotest.(check bool) "undefined fn" true (errs "main { f(); }" > 0);
  Alcotest.(check bool) "arity" true (errs "fn f(a) { nop; } main { f(); }" > 0);
  Alcotest.(check bool) "return in main" true (errs "main { return 1; }" > 0);
  Alcotest.(check bool) "unknown syscall" true (errs "main { x = @bogus(); }" > 0);
  Alcotest.(check bool) "unknown opaque" true (errs "main { x = #bogus(1); }" > 0);
  Alcotest.(check bool) "param shadows global" true
    (errs "global g; fn f(g) { nop; } main { f(1); }" > 0);
  Alcotest.(check int) "clean program" 0
    (errs "class C { f; } fn f(a) { return a; } main { x = f(1); }")

(* ------------------------------------------------------------------ *)
(* Pretty-printer roundtrip                                             *)
(* ------------------------------------------------------------------ *)

(* structural equality up to sid/line *)
let rec strip_stmt (s : Ast.stmt) : Ast.stmt =
  let node =
    match s.node with
    | Ast.If (c, a, b) -> Ast.If (c, List.map strip_stmt a, List.map strip_stmt b)
    | Ast.While (c, b) -> Ast.While (c, List.map strip_stmt b)
    | Ast.Sync (m, b) -> Ast.Sync (m, List.map strip_stmt b)
    | n -> n
  in
  { sid = 0; line = 0; node }

let strip (p : Ast.program) : Ast.program =
  {
    p with
    main = List.map strip_stmt p.main;
    fns = List.map (fun (f : Ast.fndef) -> { f with body = List.map strip_stmt f.body }) p.fns;
  }

let roundtrip_src = [
  "class C { f; g; } global x; fn w(a, b) { c = new C; c.f = a + b; return c.f; } main { x = w(1, 2); print x; }";
  "main { m = newmap; m{\"k\"} = 1; v = m{\"k\"}; h = maphas(m, \"k\"); assert h; }";
  "class L {} global l; fn w() { sync (l) { lock l; unlock l; wait l; } } main { l = new L; spawn t = w(); notifyall l; }";
  "main { a = new[10]; a[0] = 5; x = a[0]; while (x > 0) { x = x - 1; } if (x == 0) { print x; } else { yield; } }";
  "main { t = @time(); r = @rand(10); h = #hash(t + r); s = #to_str(h); print s; }";
]

let test_pp_roundtrip () =
  List.iter
    (fun src ->
      let p1 = parse src in
      let printed = Pp.to_string p1 in
      let p2 =
        try parse printed
        with Parser.Parse_error (m, l) ->
          Alcotest.failf "reparse failed (%s at line %d) for:\n%s" m l printed
      in
      if strip p1 <> strip p2 then
        Alcotest.failf "roundtrip mismatch:\n-- original --\n%s\n-- reprinted --\n%s" src printed)
    roundtrip_src

(* qcheck: random pure expressions print and reparse to the same tree *)
let gen_expr : Ast.expr QCheck.arbitrary =
  let open QCheck.Gen in
  let leaf =
    oneof
      [ map (fun n -> Ast.Int n) (int_range (-50) 50);
        map (fun b -> Ast.Bool b) bool;
        return Ast.Null;
        map (fun c -> Ast.Var (String.make 1 c)) (char_range 'a' 'e') ]
  in
  let expr =
    sized (fun n ->
        fix
          (fun self n ->
            if n <= 0 then leaf
            else
              frequency
                [ (2, leaf);
                  ( 3,
                    map3
                      (fun op a b -> Ast.Binop (op, a, b))
                      (oneofl Ast.[ Add; Sub; Mul; Div; Mod; Eq; Ne; Lt; Le; Gt; Ge; And; Or ])
                      (self (n / 2)) (self (n / 2)) );
                  (1, map (fun a -> Ast.Unop (Ast.Not, a)) (self (n - 1)));
                  (1, map (fun a -> Ast.Unop (Ast.Neg, a)) (self (n - 1))) ])
          n)
  in
  QCheck.make ~print:Pp.expr_to_string expr

(* the parser folds unary minus on literals; normalize the generated tree
   the same way before comparing *)
let rec fold_neg (e : Ast.expr) : Ast.expr =
  match e with
  | Ast.Unop (Ast.Neg, Ast.Int n) -> Ast.Int (-n)
  | Ast.Unop (op, a) -> (
    match op, fold_neg a with
    | Ast.Neg, Ast.Int n -> Ast.Int (-n)
    | op, a -> Ast.Unop (op, a))
  | Ast.Binop (op, a, b) -> Ast.Binop (op, fold_neg a, fold_neg b)
  | e -> e

let expr_roundtrip =
  QCheck.Test.make ~count:300 ~name:"pp/parse roundtrip for expressions" gen_expr (fun e ->
      let src = Printf.sprintf "main { a = 0; b = 0; c = 0; d = 0; e = 0; x = %s; }" (Pp.expr_to_string e) in
      let p = parse src in
      let found =
        Ast.fold_stmts
          (fun acc s -> match s.node with Ast.Assign ("x", e') -> Some e' | _ -> acc)
          None p
      in
      match found with Some e' -> e' = fold_neg e | None -> false)

let () =
  Alcotest.run "lang"
    [
      ( "lexer",
        [
          Alcotest.test_case "basic tokens" `Quick test_lexer_basic;
          Alcotest.test_case "operators" `Quick test_lexer_operators;
          Alcotest.test_case "line numbers" `Quick test_lexer_line_numbers;
          Alcotest.test_case "block comments" `Quick test_lexer_block_comment;
          Alcotest.test_case "errors" `Quick test_lexer_errors;
          Alcotest.test_case "syscalls and opaques" `Quick test_lexer_sys_opaque;
        ] );
      ( "parser",
        [
          Alcotest.test_case "nested loads hoisted" `Quick test_desugar_nested_loads;
          Alcotest.test_case "global access desugared" `Quick test_desugar_global;
          Alcotest.test_case "while condition re-read" `Quick test_desugar_while_cond;
          Alcotest.test_case "precedence" `Quick test_parse_precedence;
          Alcotest.test_case "else-if chains" `Quick test_parse_else_if;
          Alcotest.test_case "sync/spawn/join" `Quick test_parse_sync_spawn;
          Alcotest.test_case "map syntax" `Quick test_parse_map_syntax;
          Alcotest.test_case "parse errors" `Quick test_parse_errors;
          Alcotest.test_case "site ids unique" `Quick test_unique_sids;
        ] );
      ("check", [ Alcotest.test_case "static errors" `Quick test_check_errors ]);
      ( "pp",
        [
          Alcotest.test_case "program roundtrip" `Quick test_pp_roundtrip;
          QCheck_alcotest.to_alcotest expr_roundtrip;
        ] );
    ]
