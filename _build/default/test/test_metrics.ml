(* Cost model and aggregate statistics. *)

open Metrics

let test_cost_monotone_in_level () =
  let ops level =
    [ Cost.LwUpdate { level }; Cost.ValidateRead { level };
      Cost.RunSwitch { level };
      Cost.SyncVectorAppend { level; resize = false };
      Cost.CasIncrement { level }; Cost.VersionRead { level } ]
  in
  List.iter2
    (fun lo hi -> Alcotest.(check bool) "level raises cost" true (Cost.cost hi >= Cost.cost lo))
    (ops 0) (ops 5)

let test_fast_paths_cheap () =
  Alcotest.(check bool) "run extension cheapest" true
    (Cost.cost Cost.RunExtend < Cost.cost (Cost.LwUpdate { level = 0 }));
  Alcotest.(check bool) "light write < leap append" true
    (Cost.cost (Cost.LwUpdate { level = 7 })
    < Cost.cost (Cost.SyncVectorAppend { level = 7; resize = false }));
  Alcotest.(check bool) "resize costs extra" true
    (Cost.cost (Cost.SyncVectorAppend { level = 0; resize = true })
    > Cost.cost (Cost.SyncVectorAppend { level = 0; resize = false }))

let test_meter () =
  let m = Cost.meter () in
  Cost.charge m Cost.RunExtend;
  Cost.charge m Cost.DepAppend;
  Alcotest.(check int) "two ops" 2 m.ops;
  Alcotest.(check bool) "units accumulated" true (m.units > 0);
  let ovh = Cost.overhead m ~steps:100 in
  Alcotest.(check bool) "overhead fraction" true (ovh > 0.0 && ovh < 1.0);
  Alcotest.(check (float 0.001)) "zero steps safe" 0.0 (Cost.overhead m ~steps:0)

let test_stripes_convoy () =
  let s = Cost.stripes () in
  let l = Runtime.Loc.field 42 "f" in
  Alcotest.(check int) "first touch uncontended" 0 (Cost.touch s l ~tid:1);
  Alcotest.(check int) "same thread still uncontended" 0 (Cost.touch s l ~tid:1);
  let lvl = Cost.touch s l ~tid:2 in
  Alcotest.(check bool) "other thread raises level" true (lvl >= 1);
  (* alternating 8 threads saturates near the window *)
  for round = 0 to 4 do
    for t = 1 to 8 do
      ignore (Cost.touch s l ~tid:(100 + t + (round * 0)))
    done
  done;
  Alcotest.(check bool) "convoy saturates" true (Cost.touch s l ~tid:1 >= 6)

let test_stripes_independent () =
  let s = Cost.stripes () in
  let a = Runtime.Loc.field 1 "f" and b = Runtime.Loc.field 2 "g" in
  if Cost.stripe_of a <> Cost.stripe_of b then begin
    ignore (Cost.touch s a ~tid:1);
    ignore (Cost.touch s a ~tid:2);
    Alcotest.(check int) "other stripe unaffected" 0 (Cost.touch s b ~tid:3)
  end

let test_summarize () =
  let s = Stats.summarize [ 1.0; 3.0; 2.0; 10.0 ] in
  Alcotest.(check (float 0.001)) "avg" 4.0 s.average;
  Alcotest.(check (float 0.001)) "median" 2.5 s.median;
  Alcotest.(check (float 0.001)) "min" 1.0 s.minimum;
  Alcotest.(check (float 0.001)) "max" 10.0 s.maximum;
  let odd = Stats.summarize [ 5.0; 1.0; 3.0 ] in
  Alcotest.(check (float 0.001)) "odd median" 3.0 odd.median;
  let empty = Stats.summarize [] in
  Alcotest.(check (float 0.001)) "empty safe" 0.0 empty.average

let prop_summary_bounds =
  QCheck.Test.make ~count:200 ~name:"summary bounds"
    QCheck.(list_of_size (QCheck.Gen.int_range 1 30) (float_range (-100.) 100.))
    (fun xs ->
      let s = Stats.summarize xs in
      s.minimum <= s.average && s.average <= s.maximum && s.minimum <= s.median
      && s.median <= s.maximum)

let () =
  Alcotest.run "metrics"
    [
      ( "cost",
        [
          Alcotest.test_case "monotone in contention" `Quick test_cost_monotone_in_level;
          Alcotest.test_case "fast paths cheap" `Quick test_fast_paths_cheap;
          Alcotest.test_case "meter" `Quick test_meter;
          Alcotest.test_case "convoy tracking" `Quick test_stripes_convoy;
          Alcotest.test_case "stripe independence" `Quick test_stripes_independent;
        ] );
      ( "stats",
        [
          Alcotest.test_case "summarize" `Quick test_summarize;
          QCheck_alcotest.to_alcotest prop_summary_bounds;
        ] );
    ]
