(** Benchmark harness: regenerates every table and figure of the paper's
    evaluation (Section 5) and runs Bechamel wall-clock microbenchmarks of
    the core components.

    Usage:
      dune exec bench/main.exe              # all experiments (E1-E9)
      dune exec bench/main.exe fig4         # one experiment
      dune exec bench/main.exe fig4 fig5 table1
      dune exec bench/main.exe bechamel     # wall-clock microbenches
    Experiments: fig4 fig5 fig6 fig7 table1 running-example solver bechamel

    The [solver] experiment additionally writes BENCH_solver.json — the
    per-workload constraint-pipeline measurement (pre/post-pruning clause
    counts, search statistics, generation and solve times) that CI uploads
    as an artifact.  The [interp] experiment writes BENCH_interp.json —
    per-workload interpreter throughput (reference vs slot-resolved, native
    and under each recording variant) with LIGHT_BENCH_ITERS controlling
    the iteration budget; every steps/sec figure is the median over the
    timed iterations, with the per-series min/max spread recorded in the
    JSON.  The [perfcheck] experiment (explicit-only, like [bechamel])
    repeats the interp measurement and exits nonzero if the record-mode
    geomean ratio_basic regressed more than 20% against the committed
    bench/BENCH_interp.baseline.json.  The [analysis] experiment writes
    BENCH_analysis.json — static-analysis precision, coarse (name buckets)
    vs sharp (points-to + escape + must-alias locks): instrumented/guarded
    sites, Section-5 space units, record-overhead ratios, and static race
    pairs with dynamic happens-before confirmation.  The [sitecheck]
    experiment (explicit-only) writes BENCH_sitecheck.json — per-workload
    instrumented/guarded site counts under the default plan, purely
    static — and exits nonzero if any workload instruments more or guards
    fewer sites than the committed bench/BENCH_sitecheck.baseline.json
    (an elision or O2 regression).  The [epochs]
    experiment (explicit-only: its default budget records 12M steps)
    writes BENCH_epochs.json — epoch-mode streaming recording of a
    synthetic service loop under LIGHT_EPOCH_STEPS / LIGHT_EPOCH_LEN,
    with peak-RSS and per-window log-size evidence for bounded-memory
    recording, per-epoch incremental solve times, and O(epoch)
    single-epoch replays.  The [service] experiment (explicit-only) writes
    BENCH_service.json — the record service under load: LIGHT_SERVICE_SESSIONS
    sessions over the 28-workload x 3-variant x 2-engine corpus through the
    bounded-queue dispatcher with recycled recorder arenas, reporting
    sessions/sec, p50/p99 session latency, peak RSS, and per-session v3-log
    byte-identity against a serial reference pass and against the naive
    per-session [Light.record] loop.  The [servicecheck] experiment
    (explicit-only) repeats it and exits nonzero if identity breaks, any
    session fails, the speedup over the naive loop drops below 2x, or it
    regresses more than 50% against bench/BENCH_service.baseline.json.

    Experiments fan out across the engine's domain pool; set LIGHT_JOBS=N
    to choose the pool size (default: one worker per core, capped at 8).
    The experiment output on stdout is deterministic — byte-identical for
    any LIGHT_JOBS — because results merge in job order and wall-clock
    values go to stderr (or are gated behind LIGHT_TIMINGS=1).  The
    bechamel microbenchmarks measure wall-clock by nature and only run when
    named explicitly. *)

let ppf = Format.std_formatter

let pool = Engine.Pool.get_default ()

(* explicit memo rather than [lazy]: a lazy forced from several domains
   raises [Lazy.Undefined]; the engine audit removed the pattern *)
let measurements =
  let memo = ref None in
  fun () ->
    match !memo with
    | Some ms -> ms
    | None ->
      let ms = Report.Experiments.measure_all ~pool () in
      memo := Some ms;
      ms

let run_fig4 () = Report.Experiments.fig4 (measurements ()) ppf
let run_fig5 () = Report.Experiments.fig5 (measurements ()) ppf
let run_fig7 () = Report.Experiments.fig7 (measurements ()) ppf
let run_fig6 () = Report.Experiments.fig6 ~pool () ppf
let run_table1 () = Report.Experiments.table1 ~pool () ppf
let run_example () = Report.Experiments.running_example () ppf
let run_solver () = Report.Experiments.solver_bench ~pool () ppf
let run_interp () = Report.Experiments.interp_bench () ppf
let run_analysis () = Report.Experiments.analysis_bench () ppf
let run_explore () = Report.Experiments.explore_bench ~pool () ppf

(* ------------------------------------------------------------------ *)
(* Bechamel wall-clock microbenchmarks                                  *)
(* ------------------------------------------------------------------ *)

let bechamel_tests () =
  let open Bechamel in
  let workload name =
    Option.get (Workloads.by_name name)
  in
  let interp_test name bm_name =
    Test.make ~name (Staged.stage (fun () ->
        let bm = workload bm_name in
        let p = Workloads.program bm in
        ignore
          (Runtime.Interp.run ~sched:(Workloads.scheduler bm) p)))
  in
  let record_test name bm_name variant =
    Test.make ~name (Staged.stage (fun () ->
        let bm = workload bm_name in
        let p = Workloads.program bm in
        ignore (Light_core.Light.record ~variant ~sched:(Workloads.scheduler bm) p)))
  in
  let solve_test name bug_name =
    Test.make ~name (Staged.stage (fun () ->
        let b = Option.get (Bugs.Defs.by_name bug_name) in
        let p = Bugs.Defs.program_of b ~scale:4 () in
        match Bugs.Harness.find_trigger ~tries:10 p with
        | Some tr ->
          let r =
            Light_core.Light.record ~variant:Light_core.Light.v_both
              ~sched:(tr.make_sched ()) p
          in
          ignore (Light_core.Replayer.solve r.log)
        | None -> ()))
  in
  let replay_test name bug_name =
    Test.make ~name (Staged.stage (fun () ->
        let b = Option.get (Bugs.Defs.by_name bug_name) in
        let p = Bugs.Defs.program_of b () in
        match Bugs.Harness.find_trigger ~tries:10 p with
        | Some tr ->
          let r =
            Light_core.Light.record ~variant:Light_core.Light.v_both
              ~sched:(tr.make_sched ()) p
          in
          ignore (Light_core.Light.replay r)
        | None -> ()))
  in
  [
    (* E1/E2 substrate: plain interpretation vs recording *)
    interp_test "interp/cache4j-base" "cache4j";
    record_test "record/cache4j-light-basic" "cache4j" Light_core.Light.v_basic;
    record_test "record/cache4j-light-o1o2" "cache4j" Light_core.Light.v_both;
    interp_test "interp/avrora-base" "dacapo-avrora";
    record_test "record/avrora-light-o1o2" "dacapo-avrora" Light_core.Light.v_both;
    (* E6: constraint generation + IDL solving + full replay *)
    solve_test "solve/cache4j-bug" "Cache4j";
    solve_test "solve/lucene651-bug" "Lucene-651";
    replay_test "replay/tomcat53498-bug" "Tomcat-53498";
  ]

let run_bechamel () =
  let open Bechamel in
  let instances = Toolkit.Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:20 ~quota:(Time.second 1.0) ~kde:(Some 100) () in
  let tests = bechamel_tests () in
  Format.printf "Bechamel wall-clock microbenchmarks (monotonic clock)@.";
  List.iter
    (fun test ->
      let results = Benchmark.all cfg instances test in
      (* sort: Hashtbl.iter order is not stable across runs *)
      Hashtbl.fold (fun name raw acc -> (name, raw) :: acc) results []
      |> List.sort (fun (a, _) (b, _) -> String.compare a b)
      |> List.iter (fun (name, raw) ->
             let stats =
               Analyze.one
                 (Analyze.ols ~r_square:false ~bootstrap:0 ~predictors:[| Measure.run |])
                 Toolkit.Instance.monotonic_clock raw
             in
             match Analyze.OLS.estimates stats with
             | Some [ est ] -> Format.printf "  %-32s %12.0f ns/run@." name est
             | _ -> Format.printf "  %-32s (no estimate)@." name))
    tests;
  Format.printf "@."

(* ------------------------------------------------------------------ *)

let all_experiments =
  [
    ("fig4", run_fig4);
    ("fig5", run_fig5);
    ("fig6", run_fig6);
    ("fig7", run_fig7);
    ("table1", run_table1);
    ("running-example", run_example);
    ("solver", run_solver);
    ("interp", run_interp);
    ("analysis", run_analysis);
    ("explore", run_explore);
  ]

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  let t0 = Unix.gettimeofday () in
  (match args with
  | [] -> List.iter (fun (_, f) -> f ()) all_experiments
  | names ->
    List.iter
      (fun n ->
        match List.assoc_opt n all_experiments with
        | Some f -> f ()
        | None when n = "bechamel" -> run_bechamel ()
        | None when n = "epochs" ->
          (* explicit-only, like bechamel: the default budget is a 12M-step
             recording (LIGHT_EPOCH_STEPS reduces it in CI) *)
          Report.Experiments.epochs_bench () ppf
        | None when n = "perfcheck" ->
          (* CI perf smoke: interp measurement + comparison against the
             committed baseline; nonzero exit on regression *)
          if not (Report.Experiments.interp_perfcheck () ppf) then exit 1
        | None when n = "sitecheck" ->
          (* CI elision gate: static site counts vs the committed baseline;
             nonzero exit when a workload loses instrumentation precision *)
          if not (Report.Experiments.sitecheck () ppf) then exit 1
        | None when n = "service" ->
          (* explicit-only: drives LIGHT_SERVICE_SESSIONS sessions (default
             1008) through the record service and writes BENCH_service.json *)
          Report.Experiments.service_bench () ppf
        | None when n = "servicecheck" ->
          (* CI throughput gate: service measurement + byte-identity checks
             + speedup floor vs the naive record loop and the committed
             bench/BENCH_service.baseline.json; nonzero exit on failure *)
          if not (Report.Experiments.service_perfcheck () ppf) then exit 1
        | None ->
          Format.printf
            "unknown experiment %s (have: %s bechamel epochs perfcheck sitecheck service servicecheck)@." n
            (String.concat " " (List.map fst all_experiments)))
      names);
  (* wall-clock on stderr: stdout stays byte-identical across runs/pools *)
  Format.eprintf "total bench time: %.1fs (jobs=%d)@."
    (Unix.gettimeofday () -. t0)
    (Engine.Pool.size pool)
